package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/deploy"
	"repro/internal/fleetstate"
	"repro/internal/model"
)

// Replica-facing surface of the cluster tier. The router ships model
// artifacts between replicas through these endpoints, framed with
// fleetstate's checksummed snapshot header so a torn or corrupted
// transfer fails validation instead of loading damaged weights:
//
//	GET  /v1/models/{name}/snapshot          framed primary artifact
//	GET  /v1/models/{name}/snapshot?which=shadow   framed shadow artifact
//	POST /v1/models/{name}/shadow?version=N  install uploaded artifact as shadow
//	POST /v1/models/{name}/alerts            install slice alert webhooks
//	GET  /v1/models/{name}/alerts            alert definitions + counters
//
// maxSnapshotBytes bounds an uploaded artifact (a malicious or confused
// client must not OOM a replica).
const maxSnapshotBytes = 256 << 20

// snapshotVersionHeader carries the artifact's deployment version on a
// snapshot download.
const snapshotVersionHeader = "X-Overton-Version"

// handleSnapshot serves the deployment's current primary (or, with
// ?which=shadow, its installed shadow) as a checksummed snapshot frame.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	which := r.URL.Query().Get("which")
	if which != "" && which != "primary" && which != "shadow" {
		httpError(w, http.StatusBadRequest, "snapshot which=%q (want primary|shadow)", which)
		return
	}
	artifact, version, err := d.ModelArtifact(which == "shadow")
	if err != nil {
		httpError(w, http.StatusConflict, "snapshot: %v", err)
		return
	}
	framed := fleetstate.EncodeSnapshot(artifact)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(snapshotVersionHeader, strconv.Itoa(version))
	w.Header().Set("Content-Length", strconv.Itoa(len(framed)))
	_, _ = w.Write(framed)
}

// handleShadowUpload installs an uploaded snapshot frame as the
// deployment's shadow at ?version=N — the receiving half of rolling
// promotion. The frame's checksum is validated before the model is
// decoded, and the model's signature is checked by SetShadow, so a
// damaged or mismatched artifact is rejected with the deployment
// unchanged.
func (s *Server) handleShadowUpload(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	version, err := strconv.Atoi(r.URL.Query().Get("version"))
	if err != nil || version <= 0 {
		httpError(w, http.StatusBadRequest, "shadow upload needs ?version=N (positive)")
		return
	}
	framed, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "shadow upload: %v", err)
		return
	}
	payload, err := fleetstate.DecodeSnapshot(framed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "shadow upload: %v", err)
		return
	}
	m, err := model.Load(bytes.NewReader(payload))
	if err != nil {
		httpError(w, http.StatusBadRequest, "shadow upload: decode model: %v", err)
		return
	}
	if err := d.SetShadow(m, version); err != nil {
		httpError(w, stateErrStatus(err), "shadow upload: %v", err)
		return
	}
	writeJSON(w, map[string]any{"model": d.Name(), "shadow_version": version})
}

// alertsRequest installs slice alert webhooks on a deployment.
type alertsRequest struct {
	Alerts []deploy.SliceAlert `json:"alerts"`
}

// handleSetAlerts installs (or with an empty list removes) the
// deployment's slice alert webhooks.
func (s *Server) handleSetAlerts(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	var req alertsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := d.SetAlerts(req.Alerts); err != nil {
		if errors.Is(err, deploy.ErrClosed) {
			httpError(w, http.StatusServiceUnavailable, "alerts: %v", err)
		} else {
			httpError(w, http.StatusBadRequest, "alerts: %v", err)
		}
		return
	}
	s.writeAlerts(w, d)
}

// handleGetAlerts reports the installed alerts and their delivery
// counters.
func (s *Server) handleGetAlerts(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	s.writeAlerts(w, d)
}

func (s *Server) writeAlerts(w http.ResponseWriter, d *deploy.Deployment) {
	st := d.AlertStatus()
	if st == nil {
		st = &deploy.AlertStatus{}
	}
	writeJSON(w, map[string]any{"model": d.Name(), "status": st})
}
