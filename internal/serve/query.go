package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/deploy"
	"repro/internal/sliceql"
	"repro/internal/telemetry"
)

// The telemetry query surface: POST /v1/query runs one sliceql statement
// against the fleet's JSONL telemetry directory, GET /v1/telemetry
// reports the logger's emission counters (the drop counters are the "am
// I losing events" signal), and the per-deployment slices endpoints
// install and read the declarative live slices whose aggregates also
// appear in /stats.

// SetTelemetry attaches the fleet telemetry logger: events start
// flowing from every deployment and /v1/query + /v1/telemetry come
// alive. Equivalent to s.Registry().SetTelemetry(l).
func (s *Server) SetTelemetry(l *telemetry.Logger) { s.reg.SetTelemetry(l) }

// queryRequest is the wire form of one sliceql query.
type queryRequest struct {
	Query string `json:"query"`
}

// handleQuery parses and runs one sliceql statement over the rotated
// telemetry streams. The logger is flushed first so a query observes the
// events emitted before the request (read-your-writes for operators);
// per-line isolation in the engine makes the concurrent-append case safe.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tel := s.reg.Telemetry()
	if tel == nil {
		httpError(w, http.StatusServiceUnavailable, "telemetry is not enabled (start with -state-dir or -telemetry-dir)")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	q, err := sliceql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tel.Flush()
	res, err := q.Run(sliceql.DirSource{Dir: tel.Dir()}, time.Now())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "query: %v", err)
		return
	}
	writeJSON(w, res)
}

// handleTelemetryStats reports the logger's per-stream counters.
func (s *Server) handleTelemetryStats(w http.ResponseWriter, r *http.Request) {
	tel := s.reg.Telemetry()
	if tel == nil {
		httpError(w, http.StatusServiceUnavailable, "telemetry is not enabled")
		return
	}
	writeJSON(w, map[string]any{"dir": tel.Dir(), "streams": tel.Stats()})
}

// slicesRequest installs a deployment's slice set (replacing the current
// one; an empty list removes all slices).
type slicesRequest struct {
	Slices []sliceql.SliceDef `json:"slices"`
}

// handleSetSlices swaps the target deployment's declarative slices. The
// definitions compile before they install, so a bad predicate answers
// 400 with the parse error and changes nothing.
func (s *Server) handleSetSlices(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	var req slicesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := d.SetSlices(req.Slices); err != nil {
		httpError(w, http.StatusBadRequest, "slices: %v", err)
		return
	}
	s.writeSlices(w, d)
}

// handleGetSlices reports the installed slice definitions with their
// live aggregates.
func (s *Server) handleGetSlices(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	s.writeSlices(w, d)
}

func (s *Server) writeSlices(w http.ResponseWriter, d *deploy.Deployment) {
	writeJSON(w, map[string]any{
		"model":   d.Name(),
		"slices":  d.SliceDefs(),
		"reports": d.Stats().Slices,
	})
}
