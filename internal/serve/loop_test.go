package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/record"
)

// mustRecord builds a validated probe record for direct deploy-layer calls.
func mustRecord(t testing.TB, m *model.Model) *record.Record {
	t.Helper()
	rec := &record.Record{Payloads: map[string]record.PayloadValue{
		"tokens":   {Tokens: []string{"how", "tall", "is", "obama"}},
		"query":    {String: "how tall is obama"},
		"entities": {Set: []record.SetMember{{ID: "Barack_Obama", Start: 3, End: 4}}},
	}}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		t.Fatal(err)
	}
	return rec
}

// labelledIngestBody is a JSONL ingest batch of 4 records with weak Intent
// supervision from two sources — the stream the improvement loop retrains
// from.
const labelledIngestBody = `{"payloads": {"tokens": ["how", "tall", "is", "obama"], "query": "how tall is obama"}, "tasks": {"Intent": {"weak1": "Height", "weak2": "Height"}}}
{"payloads": {"tokens": ["where", "is", "paris"], "query": "where is paris"}, "tasks": {"Intent": {"weak1": "Capital", "weak2": "Capital"}}}
{"payloads": {"tokens": ["how", "tall", "is", "paris"], "query": "how tall is paris"}, "tasks": {"Intent": {"weak1": "Height", "weak2": "Height"}}}
{"payloads": {"tokens": ["where", "is", "obama"], "query": "where is obama"}, "tasks": {"Intent": {"weak1": "Capital", "weak2": "Capital"}}}
`

// TestClosedLoopAutoImprove is the acceptance test for the continuous-
// improvement controller behind the HTTP front: an ingest storm feeds the
// incremental label model while concurrent predict traffic flows, the
// controller retrains a candidate, shadows it on live traffic, and the
// policy promotes it — exactly once — with every counter accounted for and
// zero goroutines leaked after the registry shuts down. Run under -race in
// CI.
func TestClosedLoopAutoImprove(t *testing.T) {
	m := freshModelSeed(t, 1)
	// Warm the shared compute pool so its goroutines land in the baseline.
	if _, err := m.PredictOne(mustRecord(t, m)); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	reg := deploy.NewRegistry()
	d := deploy.New("factoid", m, 1)
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	front := NewFleet(reg)
	ts := httptest.NewServer(front.Handler())

	// Start the controller through the front. The retrain trigger (24) is
	// more than half the total ingest (40), so at most one retrain — and
	// therefore at most one promotion — can ever fire.
	startBody := `{"action": "start", "interval_ms": 2, "min_retrain_batch": 24,
		"policy": {"min_mirrored": 6, "min_agreement": 0.5, "hysteresis": 2,
		           "rollback_window": 2, "min_regression_requests": 1073741824},
		"epochs": 1, "lr": 0.001}`
	resp, err := http.Post(ts.URL+"/v1/models/factoid/loop", "application/json", strings.NewReader(startBody))
	if err != nil {
		t.Fatal(err)
	}
	var ls deploy.LoopStatus
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !ls.Running {
		t.Fatalf("loop start: status=%d %+v", resp.StatusCode, ls)
	}
	// Double-start through the front is a state conflict.
	resp, err = http.Post(ts.URL+"/v1/models/factoid/loop", "application/json", strings.NewReader(startBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double loop start: status %d, want 409", resp.StatusCode)
	}

	// Storm: concurrent predict workers while the main goroutine streams the
	// bounded ingest and polls for the promotion.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stormErr sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/models/factoid/predict", "application/json", strings.NewReader(goodBody))
				if err != nil {
					stormErr.Store(w, err)
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					stormErr.Store(w, fmt.Errorf("predict status=%d err=%v", resp.StatusCode, err))
					return
				}
				if pr.Version != 1 && pr.Version != 2 {
					stormErr.Store(w, fmt.Errorf("served version %d, want 1 or 2", pr.Version))
					return
				}
			}
		}(w)
	}
	ingested := 0
	deadline := time.Now().Add(30 * time.Second)
	for d.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("no promotion: stats=%+v loop=%+v", d.Stats(), d.LoopStatus())
		}
		if ingested < 40 {
			resp, err := http.Post(ts.URL+"/v1/models/factoid/ingest", "application/x-ndjson", strings.NewReader(labelledIngestBody))
			if err != nil {
				t.Fatal(err)
			}
			var ir struct {
				Accepted int `json:"accepted"`
				Rejected int `json:"rejected"`
			}
			err = json.NewDecoder(resp.Body).Decode(&ir)
			resp.Body.Close()
			if err != nil || ir.Accepted != 4 || ir.Rejected != 0 {
				t.Fatalf("ingest: err=%v %+v", err, ir)
			}
			ingested += ir.Accepted
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let the loop keep ticking after the promotion: the hysteresis +
	// rollback-window machine must not fire a second promote.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	stormErr.Range(func(k, v any) bool {
		t.Errorf("storm worker %v: %v", k, v)
		return false
	})

	st := d.Stats()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d, want exactly 1", st.Promotions)
	}
	if st.Version != 2 || st.ShadowVersion != 0 {
		t.Fatalf("post-promote versions wrong: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("%d serving errors during the storm", st.Errors)
	}
	if st.Ingested != int64(ingested) {
		t.Fatalf("ingest accounting: %d, want %d", st.Ingested, ingested)
	}

	// Controller status through the front.
	resp, err = http.Get(ts.URL + "/v1/models/factoid/loop")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ls.Running || ls.Retrains != 1 || ls.Promotions != 1 || ls.Accumulated != int64(ingested) {
		t.Fatalf("loop status wrong: %+v", ls)
	}

	// Close the fleet mid-loop: the controller goroutine must exit (Close
	// waits for it), and the deployment must answer ErrClosed everywhere.
	front.Close()
	if _, _, err := d.Predict(mustRecord(t, m)); !errors.Is(err, deploy.ErrClosed) {
		t.Fatalf("Predict after Close: %v, want ErrClosed", err)
	}
	if err := d.StartLoop(deploy.LoopConfig{}); !errors.Is(err, deploy.ErrClosed) {
		t.Fatalf("StartLoop after Close: %v, want ErrClosed", err)
	}
	resp, err = http.Post(ts.URL+"/v1/models/factoid/predict", "application/json", strings.NewReader(goodBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict on closed fleet: status %d, want 503", resp.StatusCode)
	}
	if ls := d.LoopStatus(); ls.Running || ls.Promotions != 1 {
		t.Fatalf("post-Close loop status wrong: %+v", ls)
	}

	// Zero goroutines leaked once the front and its connections wind down.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	ts.Close()
	waitNumGoroutine(t, base)
}

func waitNumGoroutine(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestLoopEndpointValidation covers the loop route's error surface.
func TestLoopEndpointValidation(t *testing.T) {
	srv := New(freshModelSeed(t, 1), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"action": "dance"}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"action": "stop"}`, http.StatusOK}, // stop without a loop is a no-op
	} {
		resp, err := http.Post(ts.URL+"/v1/models/factoid/loop", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("loop %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/models/nope/loop", "application/json", strings.NewReader(`{"action":"stop"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deployment loop: status %d, want 404", resp.StatusCode)
	}
	// Status for a never-started loop: not running, zero counters.
	resp, err = http.Get(ts.URL + "/v1/models/factoid/loop")
	if err != nil {
		t.Fatal(err)
	}
	var ls deploy.LoopStatus
	err = json.NewDecoder(resp.Body).Decode(&ls)
	resp.Body.Close()
	if err != nil || ls.Running || ls.Ticks != 0 {
		t.Fatalf("idle loop status: err=%v %+v", err, ls)
	}
}
