package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/sliceql"
	"repro/internal/telemetry"
)

const taggedBody = `{
  "tags": ["intent=billing", "vip"],
  "payloads": {
    "tokens": ["how", "tall", "is", "obama"],
    "query": "how tall is obama",
    "entities": {"0": {"id": "Barack_Obama", "range": [3, 4]}}
  }
}`

// runQuery posts one sliceql statement to /v1/query and decodes the result.
func runQuery(t *testing.T, base, stmt string) (int, sliceql.Result) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": stmt})
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res sliceql.Result
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, res
}

// TestQueryEndpointOverLiveTraffic serves tagged traffic (with a
// same-seed shadow mirroring it), then answers sliceql over HTTP: the
// handler must flush the logger first so every predict that returned
// before the query is visible, across rotated files.
func TestQueryEndpointOverLiveTraffic(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	// Tiny rotation threshold: 12 predicts spread over several files.
	l, err := telemetry.New(t.TempDir(), telemetry.Options{RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv.SetTelemetry(l)
	d, _ := srv.Registry().Get("factoid")
	if err := d.SetShadow(freshModel(t), 2); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 12; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(taggedBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("predict %d: status %d", i, resp.StatusCode)
		}
	}
	d.FlushShadow()

	code, res := runQuery(t, ts.URL, "SELECT COUNT(*), P95(latency_ms) FROM predict WHERE intent=billing AND vip SINCE 1h")
	if code != 200 {
		t.Fatalf("query status %d", code)
	}
	if res.Rows[0][0] != 12.0 {
		t.Fatalf("count over rotated live stream = %v, want 12 (res=%+v)", res.Rows[0][0], res)
	}
	if res.Malformed != 0 {
		t.Fatalf("live stream produced malformed lines: %+v", res)
	}
	if files, _ := telemetry.StreamFiles(l.Dir(), telemetry.StreamPredict); len(files) < 2 {
		t.Fatalf("rotation never happened (%d files) — the cross-file case was not exercised", len(files))
	}

	// Shadow agreement for the slice, through the same endpoint.
	code, res = runQuery(t, ts.URL, "SELECT RATIO(agree,units) AS agreement FROM shadow WHERE intent=billing AND err=0")
	if code != 200 {
		t.Fatalf("shadow query status %d", code)
	}
	if res.Columns[0] != "agreement" || res.Rows[0][0] != 1.0 {
		t.Fatalf("same-seed shadow agreement = %+v", res)
	}
	if res.Matched == 0 {
		t.Fatal("no shadow events reached the stream")
	}

	// GET /v1/telemetry exposes the logger counters.
	resp, err := http.Get(ts.URL + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/telemetry: %d", resp.StatusCode)
	}
	var stats struct {
		Dir     string                           `json:"dir"`
		Streams map[string]telemetry.StreamStats `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ps := stats.Streams[telemetry.StreamPredict]
	if ps.Written < 12 || ps.Dropped != 0 {
		t.Fatalf("predict stream counters: %+v", ps)
	}
}

// TestQueryEndpointErrors pins the failure surface: 503 without a
// logger, 400 on unparseable statements and bodies — and none of them
// disturb serving.
func TestQueryEndpointErrors(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No logger attached: the surface reports itself disabled.
	if code, _ := runQuery(t, ts.URL, "SELECT COUNT(*) FROM predict"); code != http.StatusServiceUnavailable {
		t.Fatalf("query without telemetry: %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/v1/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/telemetry without logger: %d, want 503", resp.StatusCode)
	}

	l, err := telemetry.New(t.TempDir(), telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv.SetTelemetry(l)

	if code, _ := runQuery(t, ts.URL, "SELEC COUNT(*) FROM predict"); code != http.StatusBadRequest {
		t.Fatalf("bad statement: %d, want 400", code)
	}
	resp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{{{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}

	// An empty-but-valid query over a missing stream still answers 200.
	if code, res := runQuery(t, ts.URL, "SELECT COUNT(*) FROM lifecycle"); code != 200 || res.Rows[0][0] != 0.0 {
		t.Fatalf("empty stream query: code=%d res=%+v", code, res)
	}
}

// TestSlicesEndpoints installs declarative slices over HTTP, drives
// tagged traffic, and reads the live aggregates back; a bad predicate
// must answer 400 and leave the installed set untouched.
func TestSlicesEndpoints(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	install := `{"slices":[{"name":"billing","expr":"intent=billing AND age<1h"}]}`
	resp, err := http.Post(ts.URL+"/v1/models/factoid/slices", "application/json", strings.NewReader(install))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("install slices: %d", resp.StatusCode)
	}

	// A predicate that doesn't parse answers 400 and changes nothing.
	bad := `{"slices":[{"name":"broken","expr":"intent = "}]}`
	resp, err = http.Post(ts.URL+"/v1/models/factoid/slices", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad predicate: %d, want 400", resp.StatusCode)
	}

	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(taggedBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err = http.Get(ts.URL + "/v1/models/factoid/slices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Model   string                         `json:"model"`
		Slices  []sliceql.SliceDef             `json:"slices"`
		Reports map[string]sliceql.SliceReport `json:"reports"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Slices) != 1 || got.Slices[0].Name != "billing" {
		t.Fatalf("installed set = %+v (bad predicate must not have replaced it)", got.Slices)
	}
	rep, ok := got.Reports["billing"]
	if !ok || rep.Predicts != 5 {
		t.Fatalf("live report = %+v, want 5 predicts", got.Reports)
	}

	// Unknown deployment: 404.
	resp, err = http.Get(ts.URL + "/v1/models/nope/slices")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model slices: %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentPredictAndQuery hammers /predict while /v1/query runs
// against the same rotating stream — the per-line isolation and the
// single-writer logger must keep every query well-formed (no 500s, no
// malformed-line growth from concurrent appends beyond the torn tail,
// counts never decrease).
func TestConcurrentPredictAndQuery(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	// Small files force rotation under load, but MaxFiles is raised so
	// retention never prunes mid-test — otherwise COUNT legitimately
	// shrinks when the oldest segment ages out.
	l, err := telemetry.New(t.TempDir(), telemetry.Options{RotateBytes: 1024, MaxFiles: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv.SetTelemetry(l)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const predictors, perPredictor = 4, 25
	var wg sync.WaitGroup
	for p := 0; p < predictors; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPredictor; i++ {
				resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(taggedBody))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}()
	}

	var last float64
	for q := 0; q < 20; q++ {
		code, res := runQuery(t, ts.URL, "SELECT COUNT(*) FROM predict WHERE intent=billing")
		if code != 200 {
			t.Fatalf("query %d under load: status %d", q, code)
		}
		n, _ := res.Rows[0][0].(float64)
		if n < last {
			t.Fatalf("count went backwards under load: %v -> %v", last, n)
		}
		last = n
	}
	wg.Wait()

	code, res := runQuery(t, ts.URL, "SELECT COUNT(*) FROM predict WHERE intent=billing")
	if code != 200 {
		t.Fatalf("final query: status %d", code)
	}
	want := float64(predictors * perPredictor)
	if res.Rows[0][0] != want {
		t.Fatalf("final count = %v, want %v (dropped=%d)", res.Rows[0][0], want, l.Stats()[telemetry.StreamPredict].Dropped)
	}
}
