package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compile"
	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/workload"
)

func freshModelSeed(t testing.TB, seed int64) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const ingestLines = `{"payloads": {"tokens": ["how", "tall", "is", "obama"], "query": "how tall is obama"}, "tasks": {"Intent": {"weak1": "Height"}}, "tags": ["live"]}
{"payloads": {"tokens": ["where", "is", "paris"], "query": "where is paris"}}
`

// TestFleetShadowPromoteUnderLoad is the acceptance test for the
// deployment registry: two deployments behind the shared front take
// concurrent predict + ingest traffic while one of them carries a shadow
// that is promoted mid-storm. It asserts routing correctness (every
// response names the deployment that served it and a coherent version),
// that shadow/primary comparisons landed in per-deployment stats, and that
// the deployments do not interfere (requests, ingest buffers, and shadow
// state stay per-deployment). Run under -race in CI.
func TestFleetShadowPromoteUnderLoad(t *testing.T) {
	reg := deploy.NewRegistry()
	da := deploy.New("factoid-a", freshModelSeed(t, 1), 1)
	db := deploy.New("factoid-b", freshModelSeed(t, 7), 7)
	if err := reg.Add(da); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(db); err != nil {
		t.Fatal(err)
	}
	if err := da.SetShadow(freshModelSeed(t, 99), 2); err != nil {
		t.Fatal(err)
	}
	front := NewFleet(reg)
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	// Phase 1: deterministic shadow warm-up — mirrored comparisons must be
	// visible in factoid-a's stats (and absent from factoid-b's) before
	// the promote.
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/models/factoid-a/predict", "application/json", strings.NewReader(goodBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("warm-up status %d", resp.StatusCode)
		}
	}
	da.FlushShadow()
	stA := da.Stats()
	if stA.Shadow == nil || stA.Shadow.Mirrored == 0 {
		t.Fatalf("no shadow comparisons recorded: %+v", stA)
	}
	if len(stA.Shadow.Tasks) == 0 {
		t.Fatalf("shadow comparison has no per-task agreement: %+v", stA.Shadow)
	}
	if stB := db.Stats(); stB.Shadow != nil || stB.Requests != 0 {
		t.Fatalf("factoid-b polluted by factoid-a's traffic: %+v", stB)
	}

	// Phase 2: concurrent storm across both deployments (predict + ingest)
	// with a promote of A's shadow mid-flight, all through the front.
	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	var failures atomic.Int64
	var fail = func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	promoted := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "factoid-a"
			wantVersions := map[int]bool{1: true, 2: true} // promote races the storm
			if w%2 == 1 {
				name = "factoid-b"
				wantVersions = map[int]bool{7: true}
			}
			for i := 0; i < perWorker; i++ {
				if i%5 == 4 {
					resp, err := http.Post(ts.URL+"/v1/models/"+name+"/ingest", "application/x-ndjson", strings.NewReader(ingestLines))
					if err != nil || resp.StatusCode != 200 {
						fail("%s ingest: err=%v status=%v", name, err, resp)
						return
					}
					resp.Body.Close()
					continue
				}
				resp, err := http.Post(ts.URL+"/v1/models/"+name+"/predict", "application/json", strings.NewReader(goodBody))
				if err != nil {
					fail("%s predict: %v", name, err)
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					fail("%s predict decode: err=%v status=%d", name, err, resp.StatusCode)
					return
				}
				if pr.Model != name {
					fail("routing broke: asked %s, served by %s", name, pr.Model)
					return
				}
				if !wantVersions[pr.Version] {
					fail("%s served version %d, want one of %v", name, pr.Version, wantVersions)
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(promoted)
		resp, err := http.Post(ts.URL+"/v1/models/factoid-a/promote", "application/json", nil)
		if err != nil {
			fail("promote: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			fail("promote status %d", resp.StatusCode)
			return
		}
		var pr struct {
			Model   string `json:"model"`
			Version int    `json:"version"`
		}
		if json.NewDecoder(resp.Body).Decode(&pr) != nil || pr.Version != 2 {
			fail("promote response wrong: %+v", pr)
		}
	}()
	wg.Wait()
	<-promoted
	if failures.Load() != 0 {
		t.Fatalf("%d failures during fleet storm", failures.Load())
	}

	// Post-storm: promotion visible, per-deployment accounting intact.
	da.FlushShadow()
	stA = da.Stats()
	stB := db.Stats()
	if stA.Version != 2 || stA.ShadowVersion != 0 || stA.Promotions != 1 {
		t.Fatalf("promotion not reflected: %+v", stA)
	}
	if stB.Version != 7 || stB.Promotions != 0 {
		t.Fatalf("factoid-b mutated by factoid-a's promote: %+v", stB)
	}
	// 4 workers per deployment, 16 predicts + 4 ingest calls each; the
	// warm-up adds 8 more predicts to A. Errors must be zero on both.
	wantA := int64(8 + 4*16)
	wantB := int64(4 * 16)
	if stA.Requests != wantA || stA.Errors != 0 {
		t.Fatalf("factoid-a accounting: got %d requests (%d errors), want %d", stA.Requests, stA.Errors, wantA)
	}
	if stB.Requests != wantB || stB.Errors != 0 {
		t.Fatalf("factoid-b accounting: got %d requests (%d errors), want %d", stB.Requests, stB.Errors, wantB)
	}
	// Ingest stayed per-deployment: 4 workers * 4 calls * 2 lines each.
	if stA.Ingested != 32 || stB.Ingested != 32 {
		t.Fatalf("ingest accounting: a=%d b=%d, want 32 each", stA.Ingested, stB.Ingested)
	}
	recs := da.Drain()
	if len(recs) != 32 {
		t.Fatalf("drained %d records, want 32", len(recs))
	}
	// Supervision survived the wire: half the ingested lines carry a weak
	// Intent label and a tag.
	var labelled int
	for _, r := range recs {
		if _, ok := r.Label("Intent", "weak1"); ok {
			labelled++
			if !r.HasTag("live") {
				t.Fatalf("ingested record lost its tag: %+v", r)
			}
		}
	}
	if labelled != 16 {
		t.Fatalf("labelled ingested records: %d, want 16", labelled)
	}
}

// TestFleetEndpointSurface covers the remaining fleet routes: listing,
// per-deployment signature/stats, 404 on unknown names, and rollback
// through the front.
func TestFleetEndpointSurface(t *testing.T) {
	reg := deploy.NewRegistry()
	da := deploy.New("alpha", freshModelSeed(t, 1), 3)
	if err := reg.Add(da); err != nil {
		t.Fatal(err)
	}
	front := NewFleet(reg)
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Deployments []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
			Default bool   `json:"default"`
			Model   struct {
				Encoder string `json:"encoder"`
			} `json:"model"`
		} `json:"deployments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Deployments) != 1 || listing.Deployments[0].Name != "alpha" ||
		!listing.Deployments[0].Default || listing.Deployments[0].Model.Encoder != "BOW" {
		t.Fatalf("listing wrong: %+v", listing)
	}

	resp, err = http.Get(ts.URL + "/v1/models/alpha/signature")
	if err != nil {
		t.Fatal(err)
	}
	var sig schema.Signature
	err = json.NewDecoder(resp.Body).Decode(&sig)
	resp.Body.Close()
	if err != nil || len(sig.Inputs) != 3 || len(sig.Outputs) != 4 {
		t.Fatalf("signature wrong: err=%v %d/%d", err, len(sig.Inputs), len(sig.Outputs))
	}

	for _, path := range []string{"/v1/models/nope/predict", "/v1/models/nope/stats", "/v1/models/nope/promote"} {
		var resp *http.Response
		var err error
		if strings.HasSuffix(path, "stats") {
			resp, err = http.Get(ts.URL + path)
		} else {
			resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Rollback without history is a 409; after a swap it restores v3.
	resp, err = http.Post(ts.URL+"/v1/models/alpha/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rollback without history: status %d, want 409", resp.StatusCode)
	}
	if err := da.Swap(freshModelSeed(t, 2), 4); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/models/alpha/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || da.Version() != 3 {
		t.Fatalf("rollback failed: status %d version %d", resp.StatusCode, da.Version())
	}
}

// TestIngestRejectsBadLines checks per-line error isolation: good lines
// land, bad lines are counted, an all-bad stream is a 400.
func TestIngestRejectsBadLines(t *testing.T) {
	srv := New(freshModelSeed(t, 1), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mixed := `{"payloads": {"tokens": ["a", "b"], "query": "a b"}}
{{{not json
{"payloads": {"bogus": "x"}}
{"payloads": {"tokens": ["c"], "query": "c"}}
`
	resp, err := http.Post(ts.URL+"/v1/models/factoid/ingest", "application/x-ndjson", strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	var ir struct {
		Accepted  int    `json:"accepted"`
		Rejected  int    `json:"rejected"`
		Buffered  int    `json:"buffered"`
		FirstFail string `json:"first_fail"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Rejected != 2 || ir.Buffered != 2 || ir.FirstFail == "" {
		t.Fatalf("mixed ingest wrong: %+v", ir)
	}

	resp, err = http.Post(ts.URL+"/v1/models/factoid/ingest", "application/x-ndjson", strings.NewReader("{{{\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-bad ingest: status %d, want 400", resp.StatusCode)
	}
}
