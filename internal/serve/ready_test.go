package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/deploy"
	"repro/internal/faultinject"
)

// TestReadyzDistinctFromHealthz pins the probe split: flipping readiness
// off (what shutdown does before draining) turns /readyz into 503 while
// /healthz — liveness — stays 200, and predict keeps serving in-flight
// work.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	srv.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness is not readiness)", got)
	}
	// Draining still serves: readiness gates routing, not in-flight work.
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict while draining = %d, want 200", resp.StatusCode)
	}
	srv.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after re-ready = %d, want 200", got)
	}
}

// TestPredictMapsPanicAndQuarantine pins the HTTP mapping for panic
// containment: a contained model panic is 500 on that request only; once
// the panic budget quarantines the deployment, requests shed with 503.
func TestPredictMapsPanicAndQuarantine(t *testing.T) {
	reg := deploy.NewRegistry()
	if err := reg.Add(deploy.New("factoid", freshModel(t), 1, deploy.WithPanicBudget(2))); err != nil {
		t.Fatal(err)
	}
	srv := NewFleet(reg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	fi := faultinject.NewRegistry()
	fi.Arm("deploy.predict.factoid", 1, faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("boom")})
	fi.Arm("deploy.predict.factoid", 2, faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("boom")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	post := func() int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/models/factoid/predict", "application/json", strings.NewReader(goodBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(); got != http.StatusInternalServerError {
		t.Fatalf("contained panic = %d, want 500", got)
	}
	if got := post(); got != http.StatusInternalServerError {
		t.Fatalf("second contained panic = %d, want 500", got)
	}
	// Budget of 2 exhausted: quarantined now, sheds with 503.
	if got := post(); got != http.StatusServiceUnavailable {
		t.Fatalf("quarantined predict = %d, want 503", got)
	}
}
