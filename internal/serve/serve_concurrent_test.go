package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// TestConcurrentPredictWithSwap hammers /predict from many goroutines while
// the served model is hot-swapped mid-flight. Run under -race it checks the
// micro-batcher, the stats ring, and Swap for data races; functionally it
// checks every request succeeds and sees a coherent model version.
func TestConcurrentPredictWithSwap(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
				if err != nil {
					failures.Add(1)
					return
				}
				var pr predictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 || (pr.Version != 1 && pr.Version != 2) {
					failures.Add(1)
					return
				}
			}
		}()
	}
	// Swap to a new model version while requests are in flight.
	m2 := freshModel(t)
	for i := 0; i < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		srv.Swap(m2, 2)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed during concurrent swap", failures.Load())
	}
	st := srv.Snapshot()
	if st.Requests != workers*perWorker || st.Errors != 0 {
		t.Fatalf("stats after storm: %+v", st)
	}
}

// TestCloseFailsPendingRequests verifies Close unblocks handlers.
func TestCloseFailsPendingRequests(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1, WithMaxWait(time.Second), WithBatchSize(64))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond) // request parked in the 1s batch window
	srv.Close()
	select {
	case code := <-done:
		// Either the batch ran before Close (200) or the handler was
		// released with 503; both are acceptable — blocking forever is not.
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status %d after Close", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("handler still blocked after Close")
	}
}

// BenchmarkPredictThroughput drives the micro-batched server with many
// concurrent HTTP clients and reports requests/second and p99 latency —
// the serving numbers a production SLA pins — at both serving precisions.
func BenchmarkPredictThroughput(b *testing.B) {
	for _, prec := range []model.Precision{model.PrecisionF64, model.PrecisionF32} {
		b.Run(string(prec), func(b *testing.B) {
			m := freshModel(b)
			if err := m.SetPrecision(prec); err != nil {
				b.Fatal(err)
			}
			benchPredictThroughput(b, m)
		})
	}
}

func benchPredictThroughput(b *testing.B, m *model.Model) {
	srv := New(m, "factoid", 1)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}

	const clients = 16
	body := []byte(goodBody)
	var mu sync.Mutex
	var lat []time.Duration

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	jobs := make(chan struct{}, b.N)
	for i := 0; i < b.N; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, b.N/clients+1)
			for range jobs {
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p99 := lat[int(0.99*float64(len(lat)-1))]
		b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "req/s")
		b.ReportMetric(float64(p99.Microseconds())/1000.0, "p99-ms")
	}
}

// TestBadRecordDoesNotPoisonBatch queues a record that passes schema
// validation but fails inside the model (missing tokens payload) together
// with good requests in one batch window; the good requests must succeed.
func TestBadRecordDoesNotPoisonBatch(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1, WithMaxWait(50*time.Millisecond))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 4)
	bodies := []string{
		goodBody,
		`{"payloads": {"query": "no tokens here"}}`, // valid schema, fails in model
		goodBody,
		goodBody,
	}
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i, body)
	}
	wg.Wait()
	for i, code := range codes {
		want := http.StatusOK
		if i == 1 {
			want = http.StatusInternalServerError
		}
		if code != want {
			t.Fatalf("request %d: status %d, want %d (codes %v)", i, code, want, codes)
		}
	}
}
