// Package serve implements the production serving side of Overton: a
// shared HTTP JSON front over a registry of model deployments. Serving
// code depends only on each deployment's schema-derived signature — never
// on model internals — so retrained or re-tuned models hot-swap, shadow,
// and promote without serving changes (model independence).
//
// Every deployment runs its own micro-batch collector: handlers parse and
// validate a payload against the target deployment's schema, then queue it
// for that deployment's collector, which drains up to BatchSize requests
// (or waits at most MaxWait for stragglers) and runs one batched Predict,
// fanning the outputs back per request. Deployments are fully isolated —
// one model's traffic never batches with, or blocks on, another's.
//
// Fleet endpoints (the {name} segment selects the deployment):
//
//	POST /v1/models/{name}/predict    {"payloads": {...}}  ->  {"outputs": {...}, ...}
//	POST /v1/models/{name}/ingest     JSONL records -> buffered for fine-tuning
//	POST /v1/models/{name}/promote    shadow -> primary (atomic)
//	POST /v1/models/{name}/rollback   restore previous primary
//	POST /v1/models/{name}/loop       {"action":"start"|"stop", ...policy}  continuous-improvement loop
//	GET  /v1/models/{name}/loop       controller status (state, retrains, promotions)
//	POST /v1/models/{name}/limits     {"qps","burst","queue_depth"}  swap admission limits
//	GET  /v1/models/{name}/limits     current limits + admission counters
//	GET  /v1/models/{name}/stats      per-deployment SLA + shadow profile (incl. live slices)
//	GET  /v1/models/{name}/signature  serving signature JSON
//	POST /v1/models/{name}/slices     {"slices":[{"name","expr"}]}  install declarative slices
//	GET  /v1/models/{name}/slices     slice definitions + live aggregates
//	POST /v1/models/{name}/alerts     {"alerts":[{"slice","max_error_rate","url"}]}  slice alert webhooks
//	GET  /v1/models/{name}/alerts     alert definitions + delivery counters
//	GET  /v1/models/{name}/snapshot   checksummed model artifact (?which=primary|shadow)
//	POST /v1/models/{name}/shadow     upload artifact as shadow (?version=N)
//	GET  /v1/models                   fleet listing
//	POST /v1/query                    {"query":"SELECT ..."}  sliceql over the telemetry streams
//	GET  /v1/telemetry                telemetry logger counters (emitted/written/dropped)
//
// Requests shed by admission control (per-deployment QPS/queue-depth
// limits or the fleet concurrency budget) answer 429 Too Many Requests
// with a Retry-After header; see OPERATIONS.md for the operator view.
//
// Legacy single-model endpoints route to the registry's default
// deployment: POST /predict, GET /signature, GET /stats, GET /healthz.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/deploy"
	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/train"
)

// Stats re-exports the per-deployment serving profile.
type Stats = deploy.Stats

// Option customises the deployments a legacy New call creates.
type Option = deploy.Option

// WithBatchSize sets the micro-batcher's maximum batch size (default 16).
func WithBatchSize(n int) Option { return deploy.WithBatchSize(n) }

// WithMaxWait sets how long a collector waits for stragglers after the
// first request of a batch arrives (default 2ms). Zero disables waiting.
func WithMaxWait(wait time.Duration) Option { return deploy.WithMaxWait(wait) }

// WithLimits configures admission control (QPS / burst / queue depth)
// for the deployments a legacy New call creates.
func WithLimits(l deploy.Limits) Option { return deploy.WithLimits(l) }

// Server is the shared HTTP front over a deployment registry.
type Server struct {
	reg *deploy.Registry
	// notReady flips when shutdown begins: /readyz answers 503 so load
	// balancers stop routing here, while /healthz (liveness) stays 200 —
	// a draining process is healthy, just not accepting new work.
	notReady atomic.Bool
}

// New creates a server over a single-deployment registry — the legacy
// one-model entry point. name/version annotate responses (artifact
// provenance). Call Close to stop the collector when discarding the
// server.
func New(m *model.Model, name string, version int, opts ...Option) *Server {
	if name == "" {
		// The legacy API never constrained the provenance label, but the
		// registry rejects empty names (they cannot be routed to).
		name = "default"
	}
	reg := deploy.NewRegistry()
	// A single nonempty-named add into a fresh registry cannot fail.
	_ = reg.Add(deploy.New(name, m, version, opts...))
	return &Server{reg: reg}
}

// NewFleet creates a server routing to every deployment in reg.
func NewFleet(reg *deploy.Registry) *Server {
	return &Server{reg: reg}
}

// Registry exposes the underlying fleet (installing shadows, draining
// ingest buffers, adding deployments at runtime).
func (s *Server) Registry() *deploy.Registry { return s.reg }

// Close stops every deployment's collector. In-flight requests receive
// errors; subsequent requests are rejected. Safe to call more than once.
func (s *Server) Close() { s.reg.Close() }

// Swap replaces the default deployment's model atomically (deploying a new
// version). Legacy shim over Deployment.Swap.
func (s *Server) Swap(m *model.Model, version int) error {
	d := s.reg.Default()
	if d == nil {
		return fmt.Errorf("serve: no default deployment")
	}
	return d.Swap(m, version)
}

// Snapshot returns the default deployment's serving stats.
func (s *Server) Snapshot() Stats {
	d := s.reg.Default()
	if d == nil {
		return Stats{}
	}
	return d.Stats()
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Fleet surface.
	mux.HandleFunc("POST /v1/models/{name}/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/models/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/models/{name}/promote", s.handlePromote)
	mux.HandleFunc("POST /v1/models/{name}/rollback", s.handleRollback)
	mux.HandleFunc("POST /v1/models/{name}/loop", s.handleLoop)
	mux.HandleFunc("GET /v1/models/{name}/loop", s.handleLoopStatus)
	mux.HandleFunc("POST /v1/models/{name}/limits", s.handleSetLimits)
	mux.HandleFunc("GET /v1/models/{name}/limits", s.handleGetLimits)
	mux.HandleFunc("GET /v1/models/{name}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/models/{name}/signature", s.handleSignature)
	mux.HandleFunc("POST /v1/models/{name}/slices", s.handleSetSlices)
	mux.HandleFunc("GET /v1/models/{name}/slices", s.handleGetSlices)
	mux.HandleFunc("POST /v1/models/{name}/alerts", s.handleSetAlerts)
	mux.HandleFunc("GET /v1/models/{name}/alerts", s.handleGetAlerts)
	// Cluster surface: snapshot shipping between router and replicas.
	mux.HandleFunc("GET /v1/models/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/models/{name}/shadow", s.handleShadowUpload)
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /v1/models/{$}", s.handleList)
	// Telemetry surface (fleet-wide).
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/telemetry", s.handleTelemetryStats)
	// Legacy single-model surface -> default deployment.
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("GET /signature", s.handleSignature)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// SetReady flips the /readyz admission signal. Shutdown calls
// SetReady(false) before draining, so routers pull the instance out of
// rotation while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the server is accepting new work.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// deployment resolves the request's target: the {name} path segment on
// fleet routes, the registry default on legacy routes. Writes the error
// response itself and returns nil when resolution fails.
func (s *Server) deployment(w http.ResponseWriter, r *http.Request) *deploy.Deployment {
	if name := r.PathValue("name"); name != "" {
		d, ok := s.reg.Get(name)
		if !ok {
			httpError(w, http.StatusNotFound, "no deployment %q", name)
			return nil
		}
		return d
	}
	d := s.reg.Default()
	if d == nil {
		httpError(w, http.StatusServiceUnavailable, "no deployments registered")
		return nil
	}
	return d
}

// predictRequest is the wire request: payload values in data-file form,
// plus optional free-form tags ("intent=billing", "vip") that flow into
// the telemetry plane and drive slice predicates — they never affect the
// prediction itself.
type predictRequest struct {
	Payloads map[string]json.RawMessage `json:"payloads"`
	Tags     []string                   `json:"tags,omitempty"`
}

// predictResponse is the wire response.
type predictResponse struct {
	Model   string       `json:"model"`
	Version int          `json:"version"`
	Outputs model.Output `json:"outputs"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		d.RecordError()
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	// Decode payloads straight into record form and validate against the
	// deployment's schema exactly like data-file rows — no marshal
	// round trip.
	sch := d.Schema()
	rec, err := record.ParsePayloads(req.Payloads, sch)
	if err != nil {
		d.RecordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}
	if err := record.Validate(rec, sch); err != nil {
		d.RecordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}
	rec.Tags = req.Tags
	out, version, err := d.Predict(rec)
	var shed *deploy.ShedError
	var panicked *deploy.ModelPanicError
	switch {
	case err == nil:
		writeJSON(w, predictResponse{Model: d.Name(), Version: version, Outputs: out})
	case errors.As(err, &shed):
		w.Header().Set("Retry-After", retryAfterSeconds(shed.RetryAfter))
		httpError(w, http.StatusTooManyRequests, "shed (%s): deployment %s over its admission limits", shed.Reason, d.Name())
	case errors.Is(err, deploy.ErrQuarantined):
		// Contained model panics exhausted the deployment's budget; it
		// sheds until a healthy primary is installed.
		httpError(w, http.StatusServiceUnavailable, "quarantined: %v", err)
	case errors.Is(err, deploy.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "deployment closed")
	case errors.As(err, &panicked):
		// The panic was contained to this request; the process is fine.
		httpError(w, http.StatusInternalServerError, "model panic (contained): %v", panicked.Value)
	default:
		httpError(w, http.StatusInternalServerError, "predict: %v", err)
	}
}

// retryAfterSeconds renders a shed's backoff hint as an HTTP Retry-After
// value: whole seconds, at least 1 (the header has no sub-second form),
// capped at 60 so a deeply drained token bucket cannot tell clients to
// go away for hours.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// ingestLine is one JSONL line of a streaming ingest request: payloads in
// data-file form, optionally with multi-source supervision and tags.
type ingestLine struct {
	ID       string                                `json:"id,omitempty"`
	Payloads map[string]json.RawMessage            `json:"payloads"`
	Tasks    map[string]map[string]json.RawMessage `json:"tasks,omitempty"`
	Tags     []string                              `json:"tags,omitempty"`
}

// ingestResponse summarises one ingest call. Dropped counts previously
// buffered records *this request* overwrote (the window was full), so a
// producer sees its own backpressure rather than the buffer's lifetime
// total.
type ingestResponse struct {
	Accepted  int    `json:"accepted"`
	Rejected  int    `json:"rejected"`
	Buffered  int    `json:"buffered"`
	Dropped   int64  `json:"dropped,omitempty"`
	FirstFail string `json:"first_fail,omitempty"`
}

// handleIngest streams JSONL records into the deployment's buffer: each
// line is decoded against the deployment's schema via record.ParsePayloads
// (+ ParseTasks for supervision), validated, and appended. Bad lines are
// counted and skipped — a streaming producer should not lose a whole batch
// to one malformed record.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	sch := d.Schema()
	var resp ingestResponse
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := parseIngestLine(line, sch)
		if err != nil {
			resp.Rejected++
			if resp.FirstFail == "" {
				resp.FirstFail = err.Error()
			}
			continue
		}
		overwrote, err := d.Ingest(rec)
		if err != nil {
			d.RecordError()
			httpError(w, http.StatusServiceUnavailable, "ingest: %v", err)
			return
		}
		resp.Dropped += int64(overwrote)
		resp.Accepted++
	}
	if err := sc.Err(); err != nil {
		d.RecordError()
		httpError(w, http.StatusBadRequest, "ingest stream: %v", err)
		return
	}
	_, resp.Buffered, _ = d.IngestStats()
	code := http.StatusOK
	if resp.Accepted == 0 && resp.Rejected > 0 {
		d.RecordError()
		code = http.StatusBadRequest
	}
	writeJSONStatus(w, code, resp)
}

// parseIngestLine decodes one ingest line into a validated record.
func parseIngestLine(line []byte, sch *schema.Schema) (*record.Record, error) {
	var il ingestLine
	if err := json.Unmarshal(line, &il); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	rec, err := record.ParsePayloads(il.Payloads, sch)
	if err != nil {
		return nil, err
	}
	rec.ID = il.ID
	rec.Tags = il.Tags
	if len(il.Tasks) > 0 {
		tasks, err := record.ParseTasks(il.Tasks, sch)
		if err != nil {
			return nil, err
		}
		rec.Tasks = tasks
	}
	if err := record.Validate(rec, sch); err != nil {
		return nil, err
	}
	return rec, nil
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	version, err := d.Promote()
	if err != nil {
		httpError(w, stateErrStatus(err), "promote: %v", err)
		return
	}
	writeJSON(w, map[string]any{"model": d.Name(), "version": version})
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	version, err := d.Rollback()
	if err != nil {
		httpError(w, stateErrStatus(err), "rollback: %v", err)
		return
	}
	writeJSON(w, map[string]any{"model": d.Name(), "version": version})
}

// loopRequest starts or stops a deployment's continuous-improvement
// controller. All knobs are optional; zero values take the deploy package's
// defaults.
type loopRequest struct {
	Action string `json:"action"` // "start" | "stop"
	// IntervalMillis is the controller tick period.
	IntervalMillis int64 `json:"interval_ms,omitempty"`
	// Policy gates promotion/rollback (deploy.Policy JSON).
	Policy deploy.Policy `json:"policy,omitempty"`
	// MinRetrainBatch / WindowCap bound the retrain trigger and window.
	MinRetrainBatch int `json:"min_retrain_batch,omitempty"`
	WindowCap       int `json:"window_cap,omitempty"`
	// Estimator for the incremental label model ("accuracy" | "majority").
	Estimator string `json:"estimator,omitempty"`
	Rebalance bool   `json:"rebalance,omitempty"`
	// Fine-tune bounds.
	Epochs    int     `json:"epochs,omitempty"`
	LR        float64 `json:"lr,omitempty"`
	BatchSize int     `json:"batch_size,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// handleLoop starts or stops the target deployment's improvement loop.
func (s *Server) handleLoop(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	var req loopRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	switch req.Action {
	case "start":
		cfg := deploy.LoopConfig{
			Interval:        time.Duration(req.IntervalMillis) * time.Millisecond,
			Policy:          req.Policy,
			MinRetrainBatch: req.MinRetrainBatch,
			WindowCap:       req.WindowCap,
			Estimator:       labelmodel.Estimator(req.Estimator),
			Rebalance:       req.Rebalance,
			Seed:            req.Seed,
			FineTune: train.FineTuneConfig{
				Epochs:    req.Epochs,
				LR:        req.LR,
				BatchSize: req.BatchSize,
			},
		}
		if err := d.StartLoop(cfg); err != nil {
			httpError(w, stateErrStatus(err), "loop start: %v", err)
			return
		}
	case "stop":
		d.StopLoop()
	default:
		httpError(w, http.StatusBadRequest, "loop action %q (want start|stop)", req.Action)
		return
	}
	writeJSON(w, d.LoopStatus())
}

// handleLoopStatus reports the controller's state and counters.
func (s *Server) handleLoopStatus(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	writeJSON(w, d.LoopStatus())
}

// limitsResponse reports a deployment's admission configuration next to
// its live admission counters, so one GET answers both "what are the
// knobs" and "is it shedding".
type limitsResponse struct {
	Model    string             `json:"model"`
	Limits   deploy.Limits      `json:"limits"`
	Load     monitor.LoadReport `json:"load"`
	InFlight int64              `json:"in_flight"`
}

// handleSetLimits swaps the target deployment's admission limits at
// runtime (token bucket restarts full; counters are preserved).
func (s *Server) handleSetLimits(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	var req deploy.Limits
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if err := d.SetLimits(req); err != nil {
		if errors.Is(err, deploy.ErrClosed) {
			httpError(w, http.StatusServiceUnavailable, "limits: %v", err)
		} else {
			httpError(w, http.StatusBadRequest, "limits: %v", err)
		}
		return
	}
	s.writeLimits(w, d)
}

// handleGetLimits reports the target deployment's admission limits and
// counters.
func (s *Server) handleGetLimits(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	s.writeLimits(w, d)
}

func (s *Server) writeLimits(w http.ResponseWriter, d *deploy.Deployment) {
	writeJSON(w, limitsResponse{
		Model:    d.Name(),
		Limits:   d.Limits(),
		Load:     d.Load(),
		InFlight: d.InFlight(),
	})
}

func (s *Server) handleSignature(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	writeJSON(w, d.Signature())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	d := s.deployment(w, r)
	if d == nil {
		return
	}
	writeJSON(w, d.Stats())
}

// deploymentInfo is one row of the fleet listing.
type deploymentInfo struct {
	Name          string     `json:"name"`
	Version       int        `json:"version"`
	ShadowVersion int        `json:"shadow_version,omitempty"`
	Default       bool       `json:"default"`
	Requests      int64      `json:"requests"`
	Model         model.Info `json:"model"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	def := s.reg.Default()
	var out []deploymentInfo
	for _, d := range s.reg.All() {
		st := d.Stats()
		out = append(out, deploymentInfo{
			Name:          d.Name(),
			Version:       st.Version,
			ShadowVersion: st.ShadowVersion,
			Default:       d == def,
			Requests:      st.Requests,
			Model:         d.Info(),
		})
	}
	writeJSON(w, map[string]any{"deployments": out})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe, distinct from /healthz liveness: a
// draining (or deployment-less) server is alive but must not receive new
// traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	// Headers freeze at WriteHeader; Content-Type must be set first.
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing useful to do.
		_ = err
	}
}

// stateErrStatus maps a deployment state-transition error to its HTTP
// status: a closed deployment is transient-unavailable (503, like
// predict), anything else (no shadow, no history, signature mismatch) is
// a state conflict (409).
func stateErrStatus(err error) int {
	if errors.Is(err, deploy.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusConflict
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
