// Package serve implements the production serving side of Overton: an HTTP
// JSON server over a deployed model artifact. Serving code depends only on
// the schema-derived signature — never on model internals — so retrained or
// re-tuned models hot-swap without serving changes (model independence).
//
// Endpoints:
//
//	POST /predict    {"payloads": {...}}  ->  {"outputs": {...}, "model": ...}
//	GET  /signature  serving signature JSON
//	GET  /healthz    liveness
//	GET  /stats      request count + latency percentiles (SLA profiling)
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/record"
)

// Server wraps a model behind HTTP handlers.
type Server struct {
	mu      sync.RWMutex
	m       *model.Model
	name    string
	version int

	statsMu   sync.Mutex
	latencies []float64 // milliseconds, ring-buffered
	count     int64
	errors    int64
	now       func() time.Time
}

// maxLatencySamples bounds the stats buffer.
const maxLatencySamples = 4096

// New creates a server for m. name/version annotate responses (artifact
// provenance).
func New(m *model.Model, name string, version int) *Server {
	return &Server{m: m, name: name, version: version, now: time.Now}
}

// Swap replaces the served model atomically (deploying a new version).
func (s *Server) Swap(m *model.Model, version int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	s.version = version
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/signature", s.handleSignature)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// predictRequest is the wire request: payload values in data-file form.
type predictRequest struct {
	Payloads map[string]json.RawMessage `json:"payloads"`
}

// predictResponse is the wire response.
type predictResponse struct {
	Model   string       `json:"model"`
	Version int          `json:"version"`
	Outputs model.Output `json:"outputs"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := s.now()
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	s.mu.RLock()
	m := s.m
	name, version := s.name, s.version
	s.mu.RUnlock()

	// Re-encode through the record parser so payloads are validated
	// against the schema exactly like data-file rows.
	body, err := json.Marshal(map[string]any{"payloads": req.Payloads})
	if err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "re-encode: %v", err)
		return
	}
	rec, err := record.ParseRecord(body, m.Prog.Schema)
	if err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}
	out, err := m.PredictOne(rec)
	if err != nil {
		s.recordError()
		httpError(w, http.StatusInternalServerError, "predict: %v", err)
		return
	}
	s.recordLatency(float64(s.now().Sub(start).Microseconds()) / 1000.0)
	writeJSON(w, predictResponse{Model: name, Version: version, Outputs: out})
}

func (s *Server) handleSignature(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	sig := s.m.Prog.Schema.Signature()
	s.mu.RUnlock()
	writeJSON(w, sig)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// Stats is the SLA profile exposed at /stats.
type Stats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

// Snapshot returns current serving stats.
func (s *Server) Snapshot() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := Stats{Requests: s.count, Errors: s.errors}
	if len(s.latencies) > 0 {
		sorted := append([]float64(nil), s.latencies...)
		sort.Float64s(sorted)
		st.P50Millis = percentile(sorted, 0.50)
		st.P95Millis = percentile(sorted, 0.95)
		st.P99Millis = percentile(sorted, 0.99)
	}
	return st
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (s *Server) recordLatency(ms float64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++
	if len(s.latencies) >= maxLatencySamples {
		copy(s.latencies, s.latencies[1:])
		s.latencies = s.latencies[:len(s.latencies)-1]
	}
	s.latencies = append(s.latencies, ms)
}

func (s *Server) recordError() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++
	s.errors++
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing useful to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
