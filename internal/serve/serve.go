// Package serve implements the production serving side of Overton: an HTTP
// JSON server over a deployed model artifact. Serving code depends only on
// the schema-derived signature — never on model internals — so retrained or
// re-tuned models hot-swap without serving changes (model independence).
//
// Requests are micro-batched: each handler parses and validates its payload,
// then queues it for a collector goroutine that drains up to BatchSize
// requests (or waits at most MaxWait for stragglers) and runs one batched
// Predict, fanning the outputs back per request. Under concurrent load this
// amortises the per-pass fixed costs across the whole batch; a lone request
// pays at most MaxWait extra latency.
//
// Endpoints:
//
//	POST /predict    {"payloads": {...}}  ->  {"outputs": {...}, "model": ...}
//	GET  /signature  serving signature JSON
//	GET  /healthz    liveness
//	GET  /stats      request count + latency percentiles (SLA profiling)
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/record"
)

// Batching defaults; tune with WithBatchSize / WithMaxWait.
const (
	defaultBatchSize = 16
	defaultMaxWait   = 2 * time.Millisecond
	// jobQueueDepth bounds requests waiting for the collector.
	jobQueueDepth = 256
)

// maxLatencySamples bounds the stats ring buffer.
const maxLatencySamples = 4096

// Server wraps a model behind HTTP handlers.
type Server struct {
	mu      sync.RWMutex
	m       *model.Model
	name    string
	version int

	batchSize int
	maxWait   time.Duration
	jobs      chan *predictJob
	closed    chan struct{}
	closeOnce sync.Once

	statsMu    sync.Mutex
	latencies  []float64 // milliseconds; fixed-size ring buffer
	latPos     int       // next write position
	latCount   int       // live samples (caps at maxLatencySamples)
	latScratch []float64 // reused sort buffer for Snapshot
	count      int64
	errors     int64
	now        func() time.Time
}

// Option customises a Server.
type Option func(*Server)

// WithBatchSize sets the micro-batcher's maximum batch size (default 16).
func WithBatchSize(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.batchSize = n
		}
	}
}

// WithMaxWait sets how long the collector waits for stragglers after the
// first request of a batch arrives (default 2ms). Zero disables waiting:
// each batch is whatever is already queued.
func WithMaxWait(d time.Duration) Option {
	return func(s *Server) { s.maxWait = d }
}

// New creates a server for m and starts its batch collector. name/version
// annotate responses (artifact provenance). Call Close to stop the
// collector when discarding the server.
func New(m *model.Model, name string, version int, opts ...Option) *Server {
	s := &Server{
		m: m, name: name, version: version,
		batchSize:  defaultBatchSize,
		maxWait:    defaultMaxWait,
		jobs:       make(chan *predictJob, jobQueueDepth),
		closed:     make(chan struct{}),
		latencies:  make([]float64, maxLatencySamples),
		latScratch: make([]float64, 0, maxLatencySamples),
		now:        time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	go s.collect()
	return s
}

// Close stops the batch collector. In-flight requests receive errors;
// subsequent requests are rejected.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
}

// Swap replaces the served model atomically (deploying a new version).
func (s *Server) Swap(m *model.Model, version int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	s.version = version
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/signature", s.handleSignature)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// predictRequest is the wire request: payload values in data-file form.
type predictRequest struct {
	Payloads map[string]json.RawMessage `json:"payloads"`
}

// predictResponse is the wire response.
type predictResponse struct {
	Model   string       `json:"model"`
	Version int          `json:"version"`
	Outputs model.Output `json:"outputs"`
}

// predictJob carries one validated request through the micro-batcher,
// pinned to the model snapshot it was validated against so a mid-flight
// Swap cannot run it (or report provenance) under a different model.
type predictJob struct {
	rec  *record.Record
	m    *model.Model
	resp chan predictResult
}

type predictResult struct {
	out model.Output
	err error
}

// collect is the micro-batch loop: take the first job, opportunistically
// drain whatever else is already queued, then hand the batch to a
// predictor goroutine (bounded by a GOMAXPROCS-wide semaphore) so batches
// overlap on multi-core hosts — Model.Predict is concurrency-safe via its
// pooled sessions. The MaxWait straggler window only applies when every
// predictor slot is busy: an idle server dispatches a lone request
// immediately (no 2ms latency floor), while a saturated one amortises the
// wait it would spend blocked on a slot anyway into a bigger batch.
func (s *Server) collect() {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for {
		select {
		case j := <-s.jobs:
			batch := make([]*predictJob, 0, s.batchSize)
			batch = append(batch, j)
		drain:
			for len(batch) < s.batchSize {
				select {
				case j2 := <-s.jobs:
					batch = append(batch, j2)
				default:
					break drain
				}
			}
			select {
			case sem <- struct{}{}:
				// Free predictor: run what we have right now.
			default:
				// All predictors busy; gather stragglers while waiting.
				if s.maxWait > 0 && s.batchSize > 1 {
					timer := time.NewTimer(s.maxWait)
				fill:
					for len(batch) < s.batchSize {
						select {
						case j2 := <-s.jobs:
							batch = append(batch, j2)
						case <-timer.C:
							break fill
						}
					}
					timer.Stop()
				}
				sem <- struct{}{}
			}
			go func(batch []*predictJob) {
				defer func() { <-sem }()
				s.runBatch(batch)
			}(batch)
		case <-s.closed:
			// Fail any queued jobs so no handler blocks forever;
			// already-dispatched batches finish on their own goroutines.
			for {
				select {
				case j := <-s.jobs:
					j.resp <- predictResult{err: fmt.Errorf("server closed")}
				default:
					return
				}
			}
		}
	}
}

// runBatch predicts one micro-batch. Jobs run under the model snapshot
// they were validated against (a mid-window Swap splits the batch into
// per-model runs). If a batched pass fails (e.g. one record is missing a
// required payload the schema validation does not cover), it falls back to
// per-record passes so a single bad request cannot poison the others
// sharing its batch.
func (s *Server) runBatch(batch []*predictJob) {
	for start := 0; start < len(batch); {
		m := batch[start].m
		end := start + 1
		for end < len(batch) && batch[end].m == m {
			end++
		}
		run := batch[start:end]
		recs := make([]*record.Record, len(run))
		for i, j := range run {
			recs[i] = j.rec
		}
		outs, err := m.Predict(recs)
		switch {
		case err == nil:
			for i, j := range run {
				j.resp <- predictResult{out: outs[i]}
			}
		case len(run) == 1:
			run[0].resp <- predictResult{err: err}
		default:
			for _, j := range run {
				out, err := m.PredictOne(j.rec)
				j.resp <- predictResult{out: out, err: err}
			}
		}
		start = end
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := s.now()
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	s.mu.RLock()
	m := s.m
	name, version := s.name, s.version
	s.mu.RUnlock()

	// Decode payloads straight into record form and validate against the
	// schema exactly like data-file rows — no marshal/re-parse round trip.
	rec, err := record.ParsePayloads(req.Payloads, m.Prog.Schema)
	if err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		s.recordError()
		httpError(w, http.StatusBadRequest, "invalid payloads: %v", err)
		return
	}

	job := &predictJob{rec: rec, m: m, resp: make(chan predictResult, 1)}
	select {
	case s.jobs <- job:
	case <-s.closed:
		s.recordError()
		httpError(w, http.StatusServiceUnavailable, "server closed")
		return
	}
	var res predictResult
	select {
	case res = <-job.resp:
	case <-s.closed:
		s.recordError()
		httpError(w, http.StatusServiceUnavailable, "server closed")
		return
	}
	if res.err != nil {
		s.recordError()
		httpError(w, http.StatusInternalServerError, "predict: %v", res.err)
		return
	}
	s.recordLatency(float64(s.now().Sub(start).Microseconds()) / 1000.0)
	writeJSON(w, predictResponse{Model: name, Version: version, Outputs: res.out})
}

func (s *Server) handleSignature(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	sig := s.m.Prog.Schema.Signature()
	s.mu.RUnlock()
	writeJSON(w, sig)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// Stats is the SLA profile exposed at /stats.
type Stats struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

// Snapshot returns current serving stats. Percentiles are computed from a
// reused scratch copy of the live ring-buffer window.
func (s *Server) Snapshot() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := Stats{Requests: s.count, Errors: s.errors}
	if s.latCount > 0 {
		sorted := append(s.latScratch[:0], s.latencies[:s.latCount]...)
		sort.Float64s(sorted)
		st.P50Millis = percentile(sorted, 0.50)
		st.P95Millis = percentile(sorted, 0.95)
		st.P99Millis = percentile(sorted, 0.99)
	}
	return st
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// recordLatency writes one sample into the ring buffer: O(1) per request
// (the previous implementation shifted the whole window with copy).
func (s *Server) recordLatency(ms float64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++
	s.latencies[s.latPos] = ms
	s.latPos++
	if s.latPos == maxLatencySamples {
		s.latPos = 0
	}
	if s.latCount < maxLatencySamples {
		s.latCount++
	}
}

func (s *Server) recordError() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.count++
	s.errors++
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; nothing useful to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
