package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/deploy"
)

// TestFleetAdmission429 pins the HTTP face of admission control: a
// deployment over its QPS limit answers 429 with a Retry-After header
// and a JSON error naming the cause, shed counters surface through the
// stats and limits endpoints, and POST /limits swaps the limits at
// runtime so the next request is admitted again.
func TestFleetAdmission429(t *testing.T) {
	reg := deploy.NewRegistry()
	// QPS so low the bucket cannot refill within the test; burst 1 admits
	// exactly the first request.
	d := deploy.New("factoid", freshModel(t), 1,
		deploy.WithLimits(deploy.Limits{QPS: 1e-6, Burst: 1}))
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	front := NewFleet(reg)
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First request: inside the burst, 200.
	resp := post("/v1/models/factoid/predict", goodBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst predict status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Second request: shed, 429 + Retry-After.
	resp = post("/v1/models/factoid/predict", goodBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit predict status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want integer seconds in [1, 60]", ra)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(errBody.Error, "qps") {
		t.Fatalf("429 body = %q, want the shed cause named", errBody.Error)
	}

	// The shed shows up in both the stats and limits endpoints.
	var st deploy.Stats
	getJSON(t, ts.URL+"/v1/models/factoid/stats", &st)
	if st.Load == nil || st.Load.Admitted != 1 || st.Load.Shed != 1 || st.Load.ShedQPS != 1 {
		t.Fatalf("stats load = %+v, want 1 admitted / 1 qps shed", st.Load)
	}
	if st.Limits == nil || st.Limits.Burst != 1 {
		t.Fatalf("stats limits = %+v, want the configured limits", st.Limits)
	}
	var lim struct {
		Model  string        `json:"model"`
		Limits deploy.Limits `json:"limits"`
		Load   struct {
			Admitted int64 `json:"admitted"`
			Shed     int64 `json:"shed"`
		} `json:"load"`
	}
	getJSON(t, ts.URL+"/v1/models/factoid/limits", &lim)
	if lim.Model != "factoid" || lim.Limits.Burst != 1 || lim.Load.Admitted != 1 || lim.Load.Shed != 1 {
		t.Fatalf("limits endpoint = %+v, want model/limits/load populated", lim)
	}

	// Runtime swap: lift the limit over POST /limits, traffic flows again.
	body, _ := json.Marshal(deploy.Limits{})
	resp = post("/v1/models/factoid/limits", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set limits status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	for i := 0; i < 5; i++ {
		resp = post("/v1/models/factoid/predict", goodBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-swap predict %d status = %d, want 200", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Invalid limits are a 400, not a silent no-op.
	resp = post("/v1/models/factoid/limits", `{"qps": -5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid limits status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// getJSON GETs url and decodes the JSON response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if err := json.NewDecoder(io.TeeReader(resp.Body, &buf)).Decode(v); err != nil {
		t.Fatalf("decode %s: %v (body %q)", url, err, buf.String())
	}
}
