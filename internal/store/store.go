// Package store implements Overton's example row store: a binary,
// random-access file of data records with an embedded schema, per-record
// checksums, a record-offset index, and a tag index. It models the paper's
// memory-mapped row store (footnote 5: "since all elements of an example are
// needed together, a row store has obvious IO benefits"); random access is
// served with positional reads.
//
// File layout:
//
//	header:  magic "OVRS" | version u32 | schemaLen u32 | schema JSON
//	records: { recLen u32 | crc32 u32 | record JSON } *
//	index:   count u64 | offsets u64* | tagIndexLen u32 | tag index JSON
//	trailer: indexOffset u64 | magic "OVRE"
//
// All integers are little-endian.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/record"
	"repro/internal/schema"
)

const (
	magicHead = "OVRS"
	magicTail = "OVRE"
	version   = 1
)

// Writer appends records to a new store file.
type Writer struct {
	f       *os.File
	sch     *schema.Schema
	offsets []uint64
	tags    map[string][]int
	pos     uint64
	closed  bool
}

// Create starts a new store at path with the given schema embedded.
func Create(path string, sch *schema.Schema) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{f: f, sch: sch, tags: make(map[string][]int)}
	schemaJSON, err := sch.JSON()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: schema: %w", err)
	}
	var head []byte
	head = append(head, magicHead...)
	head = binary.LittleEndian.AppendUint32(head, version)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(schemaJSON)))
	head = append(head, schemaJSON...)
	if _, err := f.Write(head); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: header: %w", err)
	}
	w.pos = uint64(len(head))
	return w, nil
}

// Append writes one record.
func (w *Writer) Append(r *record.Record) error {
	if w.closed {
		return fmt.Errorf("store: append after close")
	}
	data, err := record.MarshalRecord(r, w.sch)
	if err != nil {
		return err
	}
	idx := len(w.offsets)
	w.offsets = append(w.offsets, w.pos)
	for _, t := range r.Tags {
		w.tags[t] = append(w.tags[t], idx)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(data))
	buf = append(buf, data...)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	w.pos += uint64(len(buf))
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int { return len(w.offsets) }

// Close writes the index and trailer and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	indexOffset := w.pos
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(w.offsets)))
	for _, off := range w.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, off)
	}
	tagJSON, err := json.Marshal(w.tags)
	if err != nil {
		w.f.Close()
		return fmt.Errorf("store: tag index: %w", err)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tagJSON)))
	buf = append(buf, tagJSON...)
	buf = binary.LittleEndian.AppendUint64(buf, indexOffset)
	buf = append(buf, magicTail...)
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return fmt.Errorf("store: index: %w", err)
	}
	return w.f.Close()
}

// Store reads a row store.
type Store struct {
	f       *os.File
	sch     *schema.Schema
	offsets []uint64
	tags    map[string][]int
	dataEnd uint64
}

// Open reads the header and index of the store at path.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f}
	if err := s.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.readIndex(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) readHeader() error {
	head := make([]byte, 12)
	if _, err := io.ReadFull(s.f, head); err != nil {
		return fmt.Errorf("store: header: %w", err)
	}
	if string(head[:4]) != magicHead {
		return fmt.Errorf("store: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != version {
		return fmt.Errorf("store: unsupported version %d", v)
	}
	schemaLen := binary.LittleEndian.Uint32(head[8:12])
	schemaJSON := make([]byte, schemaLen)
	if _, err := io.ReadFull(s.f, schemaJSON); err != nil {
		return fmt.Errorf("store: schema: %w", err)
	}
	sch, err := schema.Parse(schemaJSON)
	if err != nil {
		return fmt.Errorf("store: embedded schema: %w", err)
	}
	s.sch = sch
	return nil
}

func (s *Store) readIndex() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat: %w", err)
	}
	if fi.Size() < 12 {
		return fmt.Errorf("store: truncated file")
	}
	trailer := make([]byte, 12)
	if _, err := s.f.ReadAt(trailer, fi.Size()-12); err != nil {
		return fmt.Errorf("store: trailer: %w", err)
	}
	if string(trailer[8:]) != magicTail {
		return fmt.Errorf("store: bad trailer magic %q (unclosed writer?)", trailer[8:])
	}
	indexOffset := binary.LittleEndian.Uint64(trailer[:8])
	s.dataEnd = indexOffset
	indexLen := fi.Size() - 12 - int64(indexOffset)
	if indexLen < 12 {
		return fmt.Errorf("store: corrupt index")
	}
	buf := make([]byte, indexLen)
	if _, err := s.f.ReadAt(buf, int64(indexOffset)); err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:8])
	need := 8 + count*8 + 4
	if uint64(len(buf)) < need {
		return fmt.Errorf("store: index too short")
	}
	s.offsets = make([]uint64, count)
	for i := uint64(0); i < count; i++ {
		s.offsets[i] = binary.LittleEndian.Uint64(buf[8+i*8 : 16+i*8])
	}
	tagLen := binary.LittleEndian.Uint32(buf[8+count*8 : 12+count*8])
	tagJSON := buf[12+count*8 : 12+count*8+uint64(tagLen)]
	s.tags = make(map[string][]int)
	if err := json.Unmarshal(tagJSON, &s.tags); err != nil {
		return fmt.Errorf("store: tag index: %w", err)
	}
	return nil
}

// Schema returns the schema embedded in the store.
func (s *Store) Schema() *schema.Schema { return s.sch }

// Count returns the number of records.
func (s *Store) Count() int { return len(s.offsets) }

// Get reads record i with checksum verification.
func (s *Store) Get(i int) (*record.Record, error) {
	if i < 0 || i >= len(s.offsets) {
		return nil, fmt.Errorf("store: index %d out of range [0,%d)", i, len(s.offsets))
	}
	head := make([]byte, 8)
	if _, err := s.f.ReadAt(head, int64(s.offsets[i])); err != nil {
		return nil, fmt.Errorf("store: record %d: %w", i, err)
	}
	recLen := binary.LittleEndian.Uint32(head[:4])
	wantCRC := binary.LittleEndian.Uint32(head[4:8])
	data := make([]byte, recLen)
	if _, err := s.f.ReadAt(data, int64(s.offsets[i])+8); err != nil {
		return nil, fmt.Errorf("store: record %d: %w", i, err)
	}
	if got := crc32.ChecksumIEEE(data); got != wantCRC {
		return nil, fmt.Errorf("store: record %d: checksum mismatch (corrupt row)", i)
	}
	return record.ParseRecord(data, s.sch)
}

// WithTag returns the indices of records carrying tag, in file order.
func (s *Store) WithTag(tag string) []int {
	idxs := s.tags[tag]
	out := make([]int, len(idxs))
	copy(out, idxs)
	return out
}

// Tags returns the distinct tags in the store, sorted.
func (s *Store) Tags() []string {
	out := make([]string, 0, len(s.tags))
	for t := range s.tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Iterate calls fn for every record in file order, stopping on error.
func (s *Store) Iterate(fn func(i int, r *record.Record) error) error {
	for i := range s.offsets {
		r, err := s.Get(i)
		if err != nil {
			return err
		}
		if err := fn(i, r); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// WriteDataset writes every record of ds to a new store at path.
func WriteDataset(path string, ds *record.Dataset) error {
	w, err := Create(path, ds.Schema)
	if err != nil {
		return err
	}
	for _, r := range ds.Records {
		if err := w.Append(r); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

// ReadDataset loads an entire store into a Dataset.
func ReadDataset(path string) (*record.Dataset, error) {
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	ds := &record.Dataset{Schema: s.Schema()}
	err = s.Iterate(func(_ int, r *record.Record) error {
		ds.Records = append(ds.Records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteTagCSV exports the tag matrix in a Pandas-loadable CSV form: one row
// per record (by index and id), one 0/1 column per tag. This is the
// "tags are stored in a format compatible with Pandas" hook from §2.2.
func (s *Store) WriteTagCSV(w io.Writer) error {
	tags := s.Tags()
	fmt.Fprint(w, "index,id")
	for _, t := range tags {
		fmt.Fprintf(w, ",%s", t)
	}
	fmt.Fprintln(w)
	member := make(map[string]map[int]bool, len(tags))
	for _, t := range tags {
		member[t] = make(map[int]bool)
		for _, i := range s.tags[t] {
			member[t][i] = true
		}
	}
	return s.Iterate(func(i int, r *record.Record) error {
		fmt.Fprintf(w, "%d,%s", i, r.ID)
		for _, t := range tags {
			if member[t][i] {
				fmt.Fprint(w, ",1")
			} else {
				fmt.Fprint(w, ",0")
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	})
}
