package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/schema"
)

const testSchemaJSON = `{
  "payloads": {
    "tokens": {"type": "sequence", "max_length": 8},
    "query":  {"type": "singleton", "base": ["tokens"]}
  },
  "tasks": {
    "Intent": {"payload": "query", "type": "multiclass", "classes": ["A", "B"]}
  }
}`

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.Parse([]byte(testSchemaJSON))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkRecord(i int) *record.Record {
	r := &record.Record{
		ID: fmt.Sprintf("r%03d", i),
		Payloads: map[string]record.PayloadValue{
			"tokens": {Tokens: []string{"hello", "world"}},
			"query":  {String: fmt.Sprintf("hello world %d", i)},
		},
	}
	r.SetLabel("Intent", "weak1", record.Label{Kind: record.KindClass, Class: "A"})
	if i%2 == 0 {
		r.AddTag(record.TagTrain)
	} else {
		r.AddTag(record.TagTest)
	}
	if i%5 == 0 {
		r.AddTag("nutrition")
	}
	return r
}

func writeStore(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.ovrs")
	w, err := Create(path, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("writer Count = %d want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path := writeStore(t, 20)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.Count() != 20 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Schema() == nil || len(s.Schema().Tasks) != 1 {
		t.Fatalf("embedded schema wrong")
	}
	r, err := s.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "r007" {
		t.Fatalf("Get(7).ID = %s", r.ID)
	}
	if l, ok := r.Label("Intent", "weak1"); !ok || l.Class != "A" {
		t.Fatalf("label lost")
	}
}

func TestRandomAccessOrderIndependence(t *testing.T) {
	path := writeStore(t, 10)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, i := range []int{9, 0, 5, 3, 9, 1} {
		r, err := s.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if want := fmt.Sprintf("r%03d", i); r.ID != want {
			t.Fatalf("Get(%d).ID = %s want %s", i, r.ID, want)
		}
	}
	if _, err := s.Get(10); err == nil {
		t.Fatalf("out-of-range Get should fail")
	}
	if _, err := s.Get(-1); err == nil {
		t.Fatalf("negative Get should fail")
	}
}

func TestTagIndex(t *testing.T) {
	path := writeStore(t, 20)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	train := s.WithTag(record.TagTrain)
	if len(train) != 10 {
		t.Fatalf("train count %d", len(train))
	}
	nutrition := s.WithTag("nutrition")
	if len(nutrition) != 4 { // 0, 5, 10, 15
		t.Fatalf("nutrition count %d: %v", len(nutrition), nutrition)
	}
	if len(s.WithTag("zzz")) != 0 {
		t.Fatalf("unknown tag should be empty")
	}
	tags := s.Tags()
	if len(tags) != 3 || tags[0] != "nutrition" {
		t.Fatalf("Tags wrong: %v", tags)
	}
	// Returned slice must be a copy.
	train[0] = 999
	if s.WithTag(record.TagTrain)[0] == 999 {
		t.Fatalf("WithTag leaks internal slice")
	}
}

func TestIterate(t *testing.T) {
	path := writeStore(t, 5)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	err = s.Iterate(func(i int, r *record.Record) error {
		ids = append(ids, r.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || ids[0] != "r000" || ids[4] != "r004" {
		t.Fatalf("Iterate order wrong: %v", ids)
	}
	// Early stop.
	count := 0
	stop := fmt.Errorf("stop")
	err = s.Iterate(func(i int, r *record.Record) error {
		count++
		if i == 2 {
			return stop
		}
		return nil
	})
	if err != stop || count != 3 {
		t.Fatalf("Iterate early stop wrong: err=%v count=%d", err, count)
	}
}

func TestCorruptionDetected(t *testing.T) {
	path := writeStore(t, 3)
	// Flip a byte inside the first record body (header is 12 + schema).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find first record: locate the ID bytes "r000" and corrupt them.
	idx := strings.Index(string(data), "r000")
	if idx < 0 {
		t.Fatalf("record bytes not found")
	}
	data[idx] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Get(0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
	// Other records still readable.
	if _, err := s.Get(1); err != nil {
		t.Fatalf("Get(1): %v", err)
	}
}

func TestUnclosedWriterDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unclosed.ovrs")
	w, err := Create(path, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // simulate crash before Close()
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "trailer") {
		t.Fatalf("unclosed store not rejected: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.ovrs")
	w, err := Create(path, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(mkRecord(0)); err == nil {
		t.Fatalf("append after close accepted")
	}
	// Double close is a no-op.
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ovrs")
	w, err := Create(path, testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	defer s.Close()
	if s.Count() != 0 {
		t.Fatalf("empty store Count = %d", s.Count())
	}
}

func TestDatasetHelpers(t *testing.T) {
	sch := testSchema(t)
	ds := &record.Dataset{Schema: sch}
	for i := 0; i < 8; i++ {
		ds.Records = append(ds.Records, mkRecord(i))
	}
	path := filepath.Join(t.TempDir(), "ds.ovrs")
	if err := WriteDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Records) != 8 || ds2.Records[3].ID != "r003" {
		t.Fatalf("ReadDataset wrong")
	}
}

func TestWriteTagCSV(t *testing.T) {
	path := writeStore(t, 6)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var sb strings.Builder
	if err := s.WriteTagCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "index,id,nutrition,test,train" {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
	// Record 0: train + nutrition.
	if lines[1] != "0,r000,1,0,1" {
		t.Fatalf("CSV row 0 wrong: %s", lines[1])
	}
	// Record 1: test only.
	if lines[2] != "1,r001,0,1,0" {
		t.Fatalf("CSV row 1 wrong: %s", lines[2])
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("this is not a store file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func BenchmarkStoreGet(b *testing.B) {
	sch, err := schema.Parse([]byte(testSchemaJSON))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.ovrs")
	w, err := Create(path, sch)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := w.Append(mkRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(i % 1000); err != nil {
			b.Fatal(err)
		}
	}
}
