package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic builds loss = Σ (x - target)² over a single parameter vector.
func quadratic(ps *nn.ParamSet, target float64) (*nn.Param, func() float64) {
	x := ps.New("x", 1, 4, func(t *tensor.Tensor) { t.Fill(5) })
	step := func() float64 {
		g := nn.NewGraph(false, nil)
		shifted := g.AddConst(x.Node, -target)
		sq := g.Mul(shifted, shifted)
		loss := g.Sum(sq)
		g.Backward(loss)
		return loss.Value.Data[0]
	}
	return x, step
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	ps := nn.NewParamSet()
	x, step := quadratic(ps, 3)
	o := NewSGD(ps.All(), 0, 0)
	for i := 0; i < 200; i++ {
		step()
		o.Step(0.1)
	}
	for _, v := range x.Node.Value.Data {
		if math.Abs(v-3) > 1e-6 {
			t.Fatalf("SGD did not converge: %v", x.Node.Value.Data)
		}
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	ps := nn.NewParamSet()
	x, step := quadratic(ps, -2)
	o := NewSGD(ps.All(), 0.9, 0)
	for i := 0; i < 200; i++ {
		step()
		o.Step(0.02)
	}
	for _, v := range x.Node.Value.Data {
		if math.Abs(v+2) > 1e-3 {
			t.Fatalf("momentum SGD did not converge: %v", x.Node.Value.Data)
		}
	}
}

func TestAdamConverges(t *testing.T) {
	ps := nn.NewParamSet()
	x, step := quadratic(ps, 1.5)
	o := NewAdam(ps.All())
	for i := 0; i < 500; i++ {
		step()
		o.Step(0.05)
	}
	for _, v := range x.Node.Value.Data {
		if math.Abs(v-1.5) > 1e-3 {
			t.Fatalf("Adam did not converge: %v", x.Node.Value.Data)
		}
	}
}

func TestAdamWDecaysWeights(t *testing.T) {
	// With zero gradient signal, AdamW should shrink weights toward 0,
	// while plain Adam leaves them unchanged.
	ps := nn.NewParamSet()
	p := ps.New("w", 1, 1, func(t *tensor.Tensor) { t.Fill(1) })
	p.Node.Grad = tensor.New(1, 1) // zero gradient: pure decay
	aw := NewAdamW(ps.All(), 0.1)
	for i := 0; i < 50; i++ {
		aw.Step(0.1)
	}
	if p.Node.Value.Data[0] >= 1 {
		t.Fatalf("AdamW did not decay weight: %g", p.Node.Value.Data[0])
	}
}

func TestFrozenParamsUntouched(t *testing.T) {
	ps := nn.NewParamSet()
	x, step := quadratic(ps, 0)
	x.Frozen = true
	o := NewSGD(ps.All(), 0, 0)
	step()
	o.Step(0.5)
	for _, v := range x.Node.Value.Data {
		if v != 5 {
			t.Fatalf("frozen param was updated: %v", x.Node.Value.Data)
		}
	}
}

func TestStepZeroesGradients(t *testing.T) {
	ps := nn.NewParamSet()
	x, step := quadratic(ps, 0)
	o := NewAdam(ps.All())
	step()
	o.Step(0.01)
	if x.Node.Grad.MaxAbs() != 0 {
		t.Fatalf("Step must zero gradients")
	}
}

func TestClipGradNorm(t *testing.T) {
	ps := nn.NewParamSet()
	_, step := quadratic(ps, 0) // grad = 2*5 = 10 per element, norm = 20
	step()
	norm := ClipGradNorm(ps.All(), 1.0)
	if math.Abs(norm-20) > 1e-9 {
		t.Fatalf("pre-clip norm %g want 20", norm)
	}
	var sq float64
	for _, p := range ps.All() {
		for _, v := range p.Node.Grad.Data {
			sq += v * v
		}
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-6 {
		t.Fatalf("post-clip norm %g want 1", math.Sqrt(sq))
	}
	// maxNorm <= 0 disables clipping.
	step()
	ClipGradNorm(ps.All(), 0)
}

func TestConstSchedule(t *testing.T) {
	s := ConstSchedule(0.3)
	if s.LR(0) != 0.3 || s.LR(1000) != 0.3 {
		t.Fatalf("ConstSchedule wrong")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.5, Every: 10}
	if s.LR(0) != 1 || s.LR(9) != 1 {
		t.Fatalf("StepDecay early wrong")
	}
	if s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Fatalf("StepDecay decay wrong: %g %g", s.LR(10), s.LR(25))
	}
	// Every <= 0 behaves as constant.
	c := StepDecay{Base: 2, Gamma: 0.5, Every: 0}
	if c.LR(100) != 2 {
		t.Fatalf("StepDecay Every=0 wrong")
	}
}

func TestWarmupCosine(t *testing.T) {
	s := WarmupCosine{Base: 1, Floor: 0.1, Warmup: 10, Total: 110}
	if s.LR(0) >= s.LR(5) || s.LR(5) >= s.LR(9) {
		t.Fatalf("warmup not increasing")
	}
	if math.Abs(s.LR(10)-1) > 1e-9 {
		t.Fatalf("peak LR %g want 1", s.LR(10))
	}
	if s.LR(60) >= s.LR(10) || s.LR(109) >= s.LR(60) {
		t.Fatalf("cosine not decreasing")
	}
	if got := s.LR(10_000); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("LR past Total = %g want floor", got)
	}
}

// Train a tiny 2-class model end to end: Adam on a linearly separable
// problem must reach near-perfect training accuracy. This is the smoke test
// that autodiff + optimizer compose correctly.
func TestEndToEndLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := nn.NewParamSet()
	lin := nn.NewLinear(ps, "lin", 2, 8, rng)
	head := nn.NewLinear(ps, "head", 8, 2, rng)

	n := 200
	X := tensor.New(n, 2)
	targets := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		x0 := rng.NormFloat64()
		x1 := rng.NormFloat64()
		X.Set(i, 0, x0)
		X.Set(i, 1, x1)
		y := 0
		if x0+2*x1 > 0 {
			y = 1
		}
		labels[i] = y
		targets.Set(i, y, 1)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	o := NewAdam(ps.All())
	for epoch := 0; epoch < 150; epoch++ {
		g := nn.NewGraph(true, rng)
		h := g.Tanh(lin.Forward(g, g.Const(X)))
		logits := head.Forward(g, h)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		g.Backward(loss)
		ClipGradNorm(ps.All(), 5)
		o.Step(0.05)
	}
	// Evaluate.
	g := nn.NewGraph(false, nil)
	h := g.Tanh(lin.Forward(g, g.Const(X)))
	logits := head.Forward(g, h)
	correct := 0
	for i := 0; i < n; i++ {
		if logits.Value.ArgmaxRow(i) == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.97 {
		t.Fatalf("end-to-end training accuracy %.3f < 0.97", acc)
	}
}
