package opt

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Fused all-reduce + clip + step for data-parallel training.
//
// W workers hold private gradient accumulators (parameter-set views, see
// nn.ParamSet.AliasValues). StepShards walks each parameter slice once to
// sum the shard gradients elementwise in a fixed balanced-tree order into
// the primary accumulator — the same buffer a serial backward pass would
// have filled, so no extra gradient tensor is ever materialized — while
// accumulating the global squared norm in the exact element order
// ClipGradNorm uses. A second fused walk folds the clip factor into the
// SGD/Adam update (one multiply per element instead of a separate scaling
// pass), zeroing primary and shard buffers as it goes.
//
// Determinism: the tree order depends only on worker index, and shard
// boundaries depend only on (batch, W), so results are reproducible
// run-to-run. With one shard the reduce is an exact copy and the fused
// clip+step performs bit-identical arithmetic to ClipGradNorm followed by
// Step (x*scale then *lr rounds exactly like the two separate passes), so
// a W=1 data-parallel step matches the serial trainer bitwise — the parity
// tests in opt and model pin this.

// ShardedOptimizer is implemented by optimizers whose step can fuse the
// cross-worker gradient all-reduce, global-norm clip, and parameter
// update into one pair of passes over each parameter slice.
type ShardedOptimizer interface {
	Optimizer
	// StepShards applies one update where each parameter's gradient is the
	// fixed-tree-order elementwise sum of its per-worker shard gradients
	// (shards[w] aligned with the optimizer's param order; nil entries for
	// untouched params), clipped to the global norm maxNorm (<= 0 disables
	// clipping). Shard and primary gradient buffers are zeroed. Returns
	// the pre-clip global gradient norm.
	StepShards(lr float64, shards [][]*tensor.Tensor, maxNorm float64) float64
}

// gatherShards collects the non-nil shard gradient slices for param i, in
// worker order, into buf (reused across params).
func gatherShards(shards [][]*tensor.Tensor, i int, buf [][]float64) [][]float64 {
	buf = buf[:0]
	for _, sh := range shards {
		if i < len(sh) && sh[i] != nil {
			buf = append(buf, sh[i].Data)
		}
	}
	return buf
}

// treeReduceInto writes dst[j] = Σ_w srcs[w][j], summing the workers in a
// fixed balanced binary tree: ((s0+s1)+(s2+s3))+((s4+s5)+...) — the order
// an all-reduce over worker pairs would produce, and independent of which
// worker finishes first. It simultaneously accumulates sq += dst[j]² in
// ascending element order and returns the updated sq, matching
// ClipGradNorm's norm accumulation exactly. scratch must have len(srcs)
// capacity.
func treeReduceInto(dst []float64, srcs [][]float64, scratch []float64, sq float64) float64 {
	switch len(srcs) {
	case 1:
		s0 := srcs[0][:len(dst)]
		for j, v := range s0 {
			dst[j] = v
			sq += v * v
		}
	case 2:
		s0, s1 := srcs[0][:len(dst)], srcs[1][:len(dst)]
		for j := range dst {
			v := s0[j] + s1[j]
			dst[j] = v
			sq += v * v
		}
	case 4:
		s0, s1 := srcs[0][:len(dst)], srcs[1][:len(dst)]
		s2, s3 := srcs[2][:len(dst)], srcs[3][:len(dst)]
		for j := range dst {
			v := (s0[j] + s1[j]) + (s2[j] + s3[j])
			dst[j] = v
			sq += v * v
		}
	default:
		w := len(srcs)
		for j := range dst {
			for i, s := range srcs {
				scratch[i] = s[j]
			}
			for width := w; width > 1; width = (width + 1) / 2 {
				half := width / 2
				for i := 0; i < half; i++ {
					scratch[i] = scratch[2*i] + scratch[2*i+1]
				}
				if width%2 == 1 {
					scratch[half] = scratch[width-1]
				}
			}
			v := scratch[0]
			dst[j] = v
			sq += v * v
		}
	}
	return sq
}

// reduceShards sums every parameter's shard gradients into the primary
// accumulators (creating them on first touch, exactly as a serial backward
// would) and returns the pre-clip global gradient norm. Frozen parameters
// and parameters no worker has ever touched are skipped. Shard buffers are
// left intact; the fused step zeroes them after the update.
func reduceShards(params []*nn.Param, shards [][]*tensor.Tensor) float64 {
	var sq float64
	buf := make([][]float64, 0, len(shards))
	scratch := make([]float64, len(shards))
	for i, p := range params {
		if p.Frozen {
			continue
		}
		buf = buf[:0]
		buf = gatherShards(shards, i, buf)
		if len(buf) == 0 {
			// No worker touched it this run; a previously created primary
			// grad (all zeros) contributes exactly 0 to the norm — skip.
			continue
		}
		g := p.Node.Grad
		if g == nil {
			g = tensor.New(p.Node.Value.Rows, p.Node.Value.Cols)
			p.Node.Grad = g
		}
		sq = treeReduceInto(g.Data, buf, scratch, sq)
	}
	return math.Sqrt(sq)
}

// AllReduceGrads sums every parameter's shard gradients into the primary
// accumulators in the fixed tree order and zeroes the shard buffers: the
// generic fallback for optimizers that do not implement ShardedOptimizer
// (the caller then runs ClipGradNorm + Step over the primary grads as the
// serial path would). Returns the pre-clip global gradient norm.
func AllReduceGrads(params []*nn.Param, shards [][]*tensor.Tensor) float64 {
	norm := reduceShards(params, shards)
	for i := range params {
		zeroShards(shards, i)
	}
	return norm
}

// clipScale converts the global norm into the multiplier ClipGradNorm
// would have applied.
func clipScale(norm, maxNorm float64) float64 {
	if maxNorm > 0 && norm > maxNorm {
		return maxNorm / (norm + 1e-12)
	}
	return 1
}

// zeroShards clears param i's shard accumulators after the step consumed
// them (buffers are kept so the touched-parameter history — which decides
// whether Adam state advances on zero-gradient steps — matches serial).
func zeroShards(shards [][]*tensor.Tensor, i int) {
	for _, sh := range shards {
		if i < len(sh) && sh[i] != nil {
			zero(sh[i].Data)
		}
	}
}

// StepShards implements ShardedOptimizer for SGD: reduce, then one fused
// clip+decay+momentum+update walk per parameter slice.
func (o *SGD) StepShards(lr float64, shards [][]*tensor.Tensor, maxNorm float64) float64 {
	norm := reduceShards(o.Params, shards)
	scale := clipScale(norm, maxNorm)
	if o.velocity == nil && o.Momentum > 0 {
		o.velocity = make([]*tensor.Tensor, len(o.Params))
	}
	for i, p := range o.Params {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value.Data
		g := p.Node.Grad.Data
		if o.Momentum > 0 {
			if o.velocity[i] == nil {
				o.velocity[i] = tensor.New(p.Node.Value.Rows, p.Node.Value.Cols)
			}
			sgdMomentumStepScaled(w, g, o.velocity[i].Data, o.Momentum, lr, scale, o.WeightDecay)
		} else {
			sgdStepScaled(w, g, lr, scale, o.WeightDecay)
		}
		zero(g)
		zeroShards(shards, i)
	}
	return norm
}

// sgdStepScaled fuses w -= lr * (scale*g + wd*w) in one pass; the
// rounding sequence (scale*g, then +wd*w, then *lr) matches the separate
// ClipGradNorm + axpy passes bit for bit.
func sgdStepScaled(w, g []float64, lr, scale, wd float64) {
	g = g[:len(w)]
	for j := range w {
		gj := scale * g[j]
		if wd > 0 {
			gj += wd * w[j]
		}
		w[j] -= lr * gj
	}
}

// sgdMomentumStepScaled fuses v = mu*v + (scale*g + wd*w); w -= lr*v.
func sgdMomentumStepScaled(w, g, v []float64, mu, lr, scale, wd float64) {
	g = g[:len(w)]
	v = v[:len(w)]
	for j := range w {
		gj := scale * g[j]
		if wd > 0 {
			gj += wd * w[j]
		}
		vj := mu*v[j] + gj
		v[j] = vj
		w[j] -= lr * vj
	}
}

// StepShards implements ShardedOptimizer for Adam/AdamW: reduce, then one
// fused clip+moment+update walk per parameter slice.
func (o *Adam) StepShards(lr float64, shards [][]*tensor.Tensor, maxNorm float64) float64 {
	norm := reduceShards(o.Params, shards)
	scale := clipScale(norm, maxNorm)
	if o.m == nil {
		o.m = make([]*tensor.Tensor, len(o.Params))
		o.v = make([]*tensor.Tensor, len(o.Params))
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range o.Params {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value
		g := p.Node.Grad
		if o.m[i] == nil {
			o.m[i] = tensor.New(w.Rows, w.Cols)
			o.v[i] = tensor.New(w.Rows, w.Cols)
		}
		adamStepScaled(w.Data, g.Data, o.m[i].Data, o.v[i].Data,
			o.Beta1, o.Beta2, bc1, bc2, o.Eps, o.DecoupledWeightDecay, lr, scale)
		zero(g.Data)
		zeroShards(shards, i)
	}
	return norm
}

// adamStepScaled is adamStep with the clip factor folded into the
// gradient read (scale*g rounds exactly like a prior ClipGradNorm pass).
func adamStepScaled(w, g, m, v []float64, b1, b2, bc1, bc2, eps, wd, lr, scale float64) {
	g = g[:len(w)]
	m = m[:len(w)]
	v = v[:len(w)]
	ib1, ib2 := 1-b1, 1-b2
	for j := range w {
		gj := scale * g[j]
		mj := b1*m[j] + ib1*gj
		vj := b2*v[j] + ib2*gj*gj
		m[j] = mj
		v[j] = vj
		upd := (mj / bc1) / (math.Sqrt(vj/bc2) + eps)
		if wd > 0 {
			upd += wd * w[j]
		}
		w[j] -= lr * upd
	}
}
