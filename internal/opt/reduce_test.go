package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// makeParams builds a deterministic parameter set with mixed shapes and
// filled gradients: the shared fixture for the fused-step parity tests.
func makeParams(fill func(i, j int) (w, g float64)) *nn.ParamSet {
	ps := nn.NewParamSet()
	shapes := [][2]int{{3, 4}, {1, 7}, {5, 5}}
	for i, sh := range shapes {
		p := ps.New([]string{"a", "b", "c"}[i], sh[0], sh[1], nil)
		p.Node.Grad = tensor.New(sh[0], sh[1])
		for j := range p.Node.Value.Data {
			w, g := fill(i, j)
			p.Node.Value.Data[j] = w
			p.Node.Grad.Data[j] = g
		}
	}
	return ps
}

func defaultFill(i, j int) (float64, float64) {
	return 0.1*float64(i+1) + 0.01*float64(j), math.Sin(float64(i*31+j)) * 0.3
}

func paramsEqualBitwise(t *testing.T, a, b *nn.ParamSet, what string) {
	t.Helper()
	for i, pa := range a.All() {
		pb := b.All()[i]
		for j, v := range pa.Node.Value.Data {
			if v != pb.Node.Value.Data[j] {
				t.Fatalf("%s: param %s[%d] %v != %v", what, pa.Name, j, v, pb.Node.Value.Data[j])
			}
		}
	}
}

// naiveSGDStep is the reference SGD update written as separate passes
// (decay, momentum, axpy), against which the fused single-pass kernel in
// opt.go must be bit-identical.
func naiveSGDStep(ps *nn.ParamSet, vel map[string][]float64, lr, mu, wd float64) {
	for _, p := range ps.All() {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value.Data
		g := p.Node.Grad.Data
		if wd > 0 {
			for j := range g {
				g[j] += wd * w[j]
			}
		}
		if mu > 0 {
			v := vel[p.Name]
			if v == nil {
				v = make([]float64, len(w))
				vel[p.Name] = v
			}
			for j := range v {
				v[j] = mu*v[j] + g[j]
			}
			for j := range w {
				w[j] -= lr * v[j]
			}
		} else {
			for j := range w {
				w[j] -= lr * g[j]
			}
		}
		for j := range g {
			g[j] = 0
		}
	}
}

// naiveAdamStep is the reference Adam/AdamW update as separate passes.
func naiveAdamStep(ps *nn.ParamSet, mo, vo map[string][]float64, t int, lr, b1, b2, eps, wd float64) {
	bc1 := 1 - math.Pow(b1, float64(t))
	bc2 := 1 - math.Pow(b2, float64(t))
	for _, p := range ps.All() {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value.Data
		g := p.Node.Grad.Data
		m, v := mo[p.Name], vo[p.Name]
		if m == nil {
			m = make([]float64, len(w))
			v = make([]float64, len(w))
			mo[p.Name], vo[p.Name] = m, v
		}
		for j := range m {
			m[j] = b1*m[j] + (1-b1)*g[j]
		}
		for j := range v {
			v[j] = b2*v[j] + (1-b2)*g[j]*g[j]
		}
		for j := range w {
			upd := (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + eps)
			if wd > 0 {
				upd += wd * w[j]
			}
			w[j] -= lr * upd
		}
		for j := range g {
			g[j] = 0
		}
	}
}

// TestFusedSGDMatchesNaive pins the PR 1 fused SGD slice update against
// the naive multi-pass reference, bit for bit, across momentum and decay
// configurations and several steps.
func TestFusedSGDMatchesNaive(t *testing.T) {
	for _, cfg := range []struct {
		name   string
		mu, wd float64
	}{
		{"plain", 0, 0},
		{"momentum", 0.9, 0},
		{"decay", 0, 0.01},
		{"momentum+decay", 0.9, 0.01},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			fused := makeParams(defaultFill)
			naive := makeParams(defaultFill)
			o := NewSGD(fused.All(), cfg.mu, cfg.wd)
			vel := map[string][]float64{}
			for step := 0; step < 5; step++ {
				o.Step(0.05)
				naiveSGDStep(naive, vel, 0.05, cfg.mu, cfg.wd)
				paramsEqualBitwise(t, fused, naive, cfg.name)
				// Refill gradients for the next step.
				for i, p := range fused.All() {
					q := naive.All()[i]
					for j := range p.Node.Grad.Data {
						g := math.Cos(float64(step*17+i*31+j)) * 0.2
						p.Node.Grad.Data[j] = g
						q.Node.Grad.Data[j] = g
					}
				}
			}
		})
	}
}

// TestFusedAdamMatchesNaive pins the fused Adam/AdamW slice update
// against the naive multi-pass reference, bit for bit, over several steps
// (bias correction advances with t).
func TestFusedAdamMatchesNaive(t *testing.T) {
	for _, wd := range []float64{0, 0.02} {
		name := "adam"
		if wd > 0 {
			name = "adamw"
		}
		t.Run(name, func(t *testing.T) {
			fused := makeParams(defaultFill)
			naive := makeParams(defaultFill)
			o := NewAdamW(fused.All(), wd)
			mo, vo := map[string][]float64{}, map[string][]float64{}
			for step := 1; step <= 6; step++ {
				o.Step(0.01)
				naiveAdamStep(naive, mo, vo, step, 0.01, o.Beta1, o.Beta2, o.Eps, wd)
				paramsEqualBitwise(t, fused, naive, name)
				for i, p := range fused.All() {
					q := naive.All()[i]
					for j := range p.Node.Grad.Data {
						g := math.Sin(float64(step*13+i*7+j)) * 0.4
						p.Node.Grad.Data[j] = g
						q.Node.Grad.Data[j] = g
					}
				}
			}
		})
	}
}

// shardGradsFor splits each parameter's gradient into w additive shards
// (deterministic uneven split) and clears the primary grads, simulating
// what W worker views hand the fused reduce.
func shardGradsFor(ps *nn.ParamSet, w int) [][]*tensor.Tensor {
	shards := make([][]*tensor.Tensor, w)
	for s := range shards {
		shards[s] = make([]*tensor.Tensor, len(ps.All()))
	}
	for i, p := range ps.All() {
		g := p.Node.Grad
		for s := 0; s < w; s++ {
			sh := tensor.New(g.Rows, g.Cols)
			for j := range g.Data {
				// Uneven dyadic split so shard shares are exact.
				sh.Data[j] = g.Data[j] * [4]float64{0.5, 0.25, 0.125, 0.125}[s%4]
			}
			shards[s][i] = sh
		}
	}
	return shards
}

// TestStepShardsSingleShardBitwise: with one shard the fused
// reduce+clip+step must be bit-identical to the serial ClipGradNorm +
// Step sequence, for both SGD and Adam, with clipping both idle and
// active.
func TestStepShardsSingleShardBitwise(t *testing.T) {
	for _, clip := range []float64{5, 0.05} {
		for _, opt := range []string{"sgd", "adam"} {
			serial := makeParams(defaultFill)
			sharded := makeParams(defaultFill)

			// One shard carrying exactly the serial gradients; primary
			// grads start nil as a fresh worker run would leave them.
			shards := [][]*tensor.Tensor{make([]*tensor.Tensor, len(sharded.All()))}
			for i, p := range sharded.All() {
				sh := tensor.New(p.Node.Grad.Rows, p.Node.Grad.Cols)
				copy(sh.Data, p.Node.Grad.Data)
				shards[0][i] = sh
				p.Node.Grad = nil
			}

			var norm float64
			switch opt {
			case "sgd":
				os := NewSGD(serial.All(), 0.9, 0.01)
				op := NewSGD(sharded.All(), 0.9, 0.01)
				ClipGradNorm(serial.All(), clip)
				os.Step(0.05)
				norm = op.StepShards(0.05, shards, clip)
			case "adam":
				os := NewAdam(serial.All())
				op := NewAdam(sharded.All())
				ClipGradNorm(serial.All(), clip)
				os.Step(0.01)
				norm = op.StepShards(0.01, shards, clip)
			}
			paramsEqualBitwise(t, sharded, serial, opt)
			if norm <= 0 {
				t.Fatalf("%s: StepShards returned norm %v", opt, norm)
			}
			// Primary and shard accumulators must be zeroed (buffers kept).
			for i, p := range sharded.All() {
				if p.Node.Grad == nil || p.Node.Grad.MaxAbs() != 0 {
					t.Fatalf("%s: primary grad %d not zeroed", opt, i)
				}
				if shards[0][i].MaxAbs() != 0 {
					t.Fatalf("%s: shard grad %d not zeroed", opt, i)
				}
			}
		}
	}
}

// TestStepShardsMatchesSerialOnSummedGrads: W=4 shards must produce the
// same update as a serial step whose gradient is the balanced-tree sum of
// the shards.
func TestStepShardsMatchesSerialOnSummedGrads(t *testing.T) {
	serial := makeParams(defaultFill)
	sharded := makeParams(defaultFill)
	shards := shardGradsFor(sharded, 4)
	// Serial gradient = ((s0+s1)+(s2+s3)), the fused kernel's tree order.
	for i, p := range serial.All() {
		for j := range p.Node.Grad.Data {
			p.Node.Grad.Data[j] = (shards[0][i].Data[j] + shards[1][i].Data[j]) +
				(shards[2][i].Data[j] + shards[3][i].Data[j])
		}
	}
	for i, p := range sharded.All() {
		_ = i
		p.Node.Grad = nil
	}
	os := NewAdam(serial.All())
	op := NewAdam(sharded.All())
	ClipGradNorm(serial.All(), 5)
	os.Step(0.01)
	op.StepShards(0.01, shards, 5)
	paramsEqualBitwise(t, sharded, serial, "W=4")
}

// TestStepShardsTreeOrder pins the reduction bracket with values where
// float addition is not associative: a left fold would produce a
// different bit pattern than the balanced tree.
func TestStepShardsTreeOrder(t *testing.T) {
	ps := nn.NewParamSet()
	p := ps.New("x", 1, 1, nil)
	vals := []float64{1e16, 1, -1e16, 1, 3e-8}
	shards := make([][]*tensor.Tensor, len(vals))
	for s, v := range vals {
		sh := tensor.New(1, 1)
		sh.Data[0] = v
		shards[s] = []*tensor.Tensor{sh}
	}
	// Balanced tree over 5: width 5 -> (0+1),(2+3),carry 4 -> width 3 ->
	// ((0+1)+(2+3)), carry 4 -> width 2 -> sum.
	want := ((vals[0] + vals[1]) + (vals[2] + vals[3])) + vals[4]
	o := NewSGD(ps.All(), 0, 0)
	o.StepShards(1, shards, -1) // lr 1, no clip: w -= sum
	if got := -p.Node.Value.Data[0]; got != want {
		t.Fatalf("tree order: got %v want %v", got, want)
	}
}

// TestStepShardsFrozenAndUntouched: frozen params are never updated, and
// params no shard touched (nil entries) are skipped entirely.
func TestStepShardsFrozenAndUntouched(t *testing.T) {
	ps := nn.NewParamSet()
	frozen := ps.New("frozen", 1, 2, func(tt *tensor.Tensor) { tt.Fill(1) })
	frozen.Frozen = true
	live := ps.New("live", 1, 2, func(tt *tensor.Tensor) { tt.Fill(2) })
	untouched := ps.New("untouched", 1, 2, func(tt *tensor.Tensor) { tt.Fill(3) })

	sh := make([]*tensor.Tensor, 3)
	sh[0] = tensor.New(1, 2)
	sh[0].Fill(9) // would move frozen if it were consulted
	sh[1] = tensor.New(1, 2)
	sh[1].Fill(1)
	// sh[2] nil: untouched.
	o := NewSGD(ps.All(), 0, 0)
	o.StepShards(0.5, [][]*tensor.Tensor{sh}, 0)
	if frozen.Node.Value.Data[0] != 1 {
		t.Fatalf("frozen param updated: %v", frozen.Node.Value.Data)
	}
	if live.Node.Value.Data[0] != 1.5 {
		t.Fatalf("live param wrong: %v", live.Node.Value.Data)
	}
	if untouched.Node.Value.Data[0] != 3 || untouched.Node.Grad != nil {
		t.Fatalf("untouched param altered: %v", untouched.Node.Value.Data)
	}
}

// TestAllReduceGradsFallback: the generic reduce (for optimizers without
// a fused path) leaves the summed grads on the primary accumulators and
// zeroes the shard buffers.
func TestAllReduceGradsFallback(t *testing.T) {
	ps := makeParams(defaultFill)
	shards := shardGradsFor(ps, 2)
	want := make([][]float64, len(ps.All()))
	for i := range want {
		want[i] = make([]float64, len(shards[0][i].Data))
		for j := range want[i] {
			want[i][j] = shards[0][i].Data[j] + shards[1][i].Data[j]
		}
	}
	for _, p := range ps.All() {
		p.Node.Grad = nil
	}
	norm := AllReduceGrads(ps.All(), shards)
	var sq float64
	for i, p := range ps.All() {
		for j, v := range p.Node.Grad.Data {
			if v != want[i][j] {
				t.Fatalf("reduced grad mismatch at %d[%d]", i, j)
			}
			sq += v * v
		}
		if shards[0][i].MaxAbs() != 0 || shards[1][i].MaxAbs() != 0 {
			t.Fatalf("shard buffers not zeroed")
		}
	}
	if math.Abs(norm-math.Sqrt(sq)) > 1e-15 {
		t.Fatalf("norm %v want %v", norm, math.Sqrt(sq))
	}
}
