// Package opt implements the optimizers and learning-rate schedules used to
// train Overton-compiled models: SGD (with optional momentum), Adam, AdamW,
// global-norm gradient clipping, and constant / step-decay / warmup-cosine
// schedules. All optimizers skip frozen parameters.
package opt

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and zeroes
// the gradients.
type Optimizer interface {
	// Step applies one update with the given learning rate.
	Step(lr float64)
	// ZeroGrads clears gradients without updating.
	ZeroGrads()
}

// ClipGradNorm scales all trainable gradients so their global L2 norm is at
// most maxNorm. Returns the pre-clip norm. maxNorm <= 0 disables clipping.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		for _, v := range p.Node.Grad.Data {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			if p.Frozen || p.Node.Grad == nil {
				continue
			}
			tensor.Scale(p.Node.Grad, p.Node.Grad, scale)
		}
	}
	return norm
}

// SGD is stochastic gradient descent with optional momentum and L2 weight
// decay.
type SGD struct {
	Params      []*nn.Param
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*nn.Param, momentum, weightDecay float64) *SGD {
	return &SGD{Params: params, Momentum: momentum, WeightDecay: weightDecay}
}

// Step implements Optimizer. The update is a fused walk over each
// parameter's raw slice: one pass applies decay, momentum, and the axpy
// update together, with no per-parameter closure or temporary allocation.
func (o *SGD) Step(lr float64) {
	if o.velocity == nil && o.Momentum > 0 {
		o.velocity = make([]*tensor.Tensor, len(o.Params))
	}
	for i, p := range o.Params {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value.Data
		g := p.Node.Grad.Data
		if o.WeightDecay > 0 {
			axpy(o.WeightDecay, w, g) // g += wd * w
		}
		if o.Momentum > 0 {
			if o.velocity[i] == nil {
				o.velocity[i] = tensor.New(p.Node.Value.Rows, p.Node.Value.Cols)
			}
			sgdMomentumStep(w, g, o.velocity[i].Data, o.Momentum, lr)
		} else {
			axpy(-lr, g, w) // w -= lr * g
		}
		zero(g)
	}
}

// axpy computes y += alpha * x over equal-length slices.
func axpy(alpha float64, x, y []float64) {
	x = x[:len(y)]
	for j, v := range x {
		y[j] += alpha * v
	}
}

// sgdMomentumStep fuses v = mu*v + g; w -= lr*v into one pass.
func sgdMomentumStep(w, g, v []float64, mu, lr float64) {
	g = g[:len(w)]
	v = v[:len(w)]
	for j := range w {
		vj := mu*v[j] + g[j]
		v[j] = vj
		w[j] -= lr * vj
	}
}

// zero clears a slice (compiles to memclr).
func zero(s []float64) {
	for j := range s {
		s[j] = 0
	}
}

// ZeroGrads implements Optimizer.
func (o *SGD) ZeroGrads() { zeroGrads(o.Params) }

// Adam is the Adam optimizer (Kingma & Ba). With DecoupledWeightDecay > 0 it
// becomes AdamW.
type Adam struct {
	Params               []*nn.Param
	Beta1, Beta2         float64
	Eps                  float64
	DecoupledWeightDecay float64

	t int
	m []*tensor.Tensor
	v []*tensor.Tensor
}

// NewAdam creates an Adam optimizer with the standard defaults
// (beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(params []*nn.Param) *Adam {
	return &Adam{Params: params, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// NewAdamW creates Adam with decoupled weight decay.
func NewAdamW(params []*nn.Param, weightDecay float64) *Adam {
	a := NewAdam(params)
	a.DecoupledWeightDecay = weightDecay
	return a
}

// Step implements Optimizer. Moment updates, bias correction, decoupled
// decay, and the parameter write are fused into one walk per parameter
// slice (adamStep), so the step allocates nothing and streams each buffer
// exactly once.
func (o *Adam) Step(lr float64) {
	if o.m == nil {
		o.m = make([]*tensor.Tensor, len(o.Params))
		o.v = make([]*tensor.Tensor, len(o.Params))
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range o.Params {
		if p.Frozen || p.Node.Grad == nil {
			continue
		}
		w := p.Node.Value
		g := p.Node.Grad
		if o.m[i] == nil {
			o.m[i] = tensor.New(w.Rows, w.Cols)
			o.v[i] = tensor.New(w.Rows, w.Cols)
		}
		adamStep(w.Data, g.Data, o.m[i].Data, o.v[i].Data,
			o.Beta1, o.Beta2, bc1, bc2, o.Eps, o.DecoupledWeightDecay, lr)
		zero(g.Data)
	}
}

// adamStep fuses the Adam recurrences over one parameter slice.
func adamStep(w, g, m, v []float64, b1, b2, bc1, bc2, eps, wd, lr float64) {
	g = g[:len(w)]
	m = m[:len(w)]
	v = v[:len(w)]
	ib1, ib2 := 1-b1, 1-b2
	for j := range w {
		gj := g[j]
		mj := b1*m[j] + ib1*gj
		vj := b2*v[j] + ib2*gj*gj
		m[j] = mj
		v[j] = vj
		upd := (mj / bc1) / (math.Sqrt(vj/bc2) + eps)
		if wd > 0 {
			upd += wd * w[j]
		}
		w[j] -= lr * upd
	}
}

// ZeroGrads implements Optimizer.
func (o *Adam) ZeroGrads() { zeroGrads(o.Params) }

func zeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.Node.ZeroGrad()
	}
}

// Schedule maps a step index (0-based) to a learning rate.
type Schedule interface {
	LR(step int) float64
}

// ConstSchedule returns the same learning rate for every step.
type ConstSchedule float64

// LR implements Schedule.
func (c ConstSchedule) LR(int) float64 { return float64(c) }

// StepDecay multiplies Base by Gamma every Every steps.
type StepDecay struct {
	Base  float64
	Gamma float64
	Every int
}

// LR implements Schedule.
func (s StepDecay) LR(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(step/s.Every))
}

// WarmupCosine ramps linearly from 0 to Base over Warmup steps, then decays
// along a cosine to Floor at Total steps.
type WarmupCosine struct {
	Base   float64
	Floor  float64
	Warmup int
	Total  int
}

// LR implements Schedule.
func (s WarmupCosine) LR(step int) float64 {
	if step < s.Warmup && s.Warmup > 0 {
		return s.Base * float64(step+1) / float64(s.Warmup)
	}
	if s.Total <= s.Warmup {
		return s.Base
	}
	frac := float64(step-s.Warmup) / float64(s.Total-s.Warmup)
	if frac > 1 {
		frac = 1
	}
	return s.Floor + (s.Base-s.Floor)*0.5*(1+math.Cos(math.Pi*frac))
}
