// Package doclint implements the repo's documentation lint rules: godoc
// comments on exported surfaces (CheckDir) and resolvable relative links
// in markdown files (CheckMarkdown). It backs cmd/doccheck and
// cmd/mdlint, and its own tests pin the repo's documented packages and
// operator docs, so `go test ./...` fails when documentation rots —
// CI does not need to install revive or a link checker.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Problem is one lint finding, formatted as path:line: message.
type Problem struct {
	Path    string
	Line    int
	Message string
}

// String renders the finding in the editor-clickable path:line: form.
func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: %s", p.Path, p.Line, p.Message)
}

// CheckDir parses the non-test Go files of the package in dir and
// returns a finding for every exported top-level symbol that lacks a doc
// comment, plus one if the package itself has no package comment.
// Exported consts and vars may be documented on their enclosing
// declaration group instead of per spec.
func CheckDir(dir string) ([]Problem, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fileNames = append(fileNames, filepath.Join(dir, name))
	}
	sort.Strings(fileNames)
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var problems []Problem
	hasPackageDoc := false
	pkgName := ""
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		if f.Doc != nil {
			hasPackageDoc = true
		}
		problems = append(problems, checkFile(fset, f)...)
	}
	if !hasPackageDoc {
		problems = append(problems, Problem{
			Path:    fileNames[0],
			Line:    1,
			Message: fmt.Sprintf("package %s has no package comment", pkgName),
		})
	}
	sort.Slice(problems, func(i, j int) bool {
		if problems[i].Path != problems[j].Path {
			return problems[i].Path < problems[j].Path
		}
		return problems[i].Line < problems[j].Line
	})
	return problems, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []Problem {
	var problems []Problem
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, Problem{Path: p.Filename, Line: p.Line, Message: fmt.Sprintf(format, args...)})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), "exported %s %s is undocumented", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
						report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped declaration covers its
					// specs (const blocks with iota etc.).
					if s.Doc != nil || d.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(name.Pos(), "exported %s %s is undocumented", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not part of the public surface).
// Plain functions count as exported receivers.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true
		}
	}
}

// mdLink matches inline markdown links and images: [text](target) /
// ![alt](target). Reference-style links are not used in this repo.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// CheckMarkdown scans a markdown file's inline links and returns a
// finding for every relative link whose target file does not exist.
// External links (a scheme prefix) and pure in-page anchors are skipped —
// the lint must work offline; anchor fragments on relative links are
// stripped before the existence check.
func CheckMarkdown(path string) ([]Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []Problem
	base := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				problems = append(problems, Problem{
					Path:    path,
					Line:    i + 1,
					Message: fmt.Sprintf("broken relative link %q", m[1]),
				})
			}
		}
	}
	return problems, nil
}
