package doclint

import (
	"os"
	"path/filepath"
	"testing"
)

// documentedPackages are the packages whose exported surface must stay
// fully godoc'd (the operator-facing layers). Growing this list is
// encouraged; shrinking it needs a reason in the PR.
var documentedPackages = []string{
	"internal/deploy",
	"internal/serve",
	"internal/monitor",
	"internal/fleetstate",
	"internal/faultinject",
	"internal/telemetry",
	"internal/sliceql",
	"internal/cluster",
	"internal/traffic",
}

// lintedMarkdown are the docs whose relative links must resolve.
var lintedMarkdown = []string{
	"README.md",
	"OPERATIONS.md",
	"PERFORMANCE.md",
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestExportedSurfacesDocumented enforces the godoc-comment rule on the
// repo's documented packages, so `go test ./...` (tier 1) fails the
// moment an exported symbol lands without a doc comment — CI does not
// need an external linter.
func TestExportedSurfacesDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range documentedPackages {
		problems, err := CheckDir(filepath.Join(root, pkg))
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, p := range problems {
			t.Errorf("%s", p)
		}
	}
}

// TestRepoMarkdownLinks enforces that the operator docs' relative links
// resolve (the offline docs lint).
func TestRepoMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	for _, md := range lintedMarkdown {
		problems, err := CheckMarkdown(filepath.Join(root, md))
		if err != nil {
			t.Fatalf("%s: %v", md, err)
		}
		for _, p := range problems {
			t.Errorf("%s", p)
		}
	}
}

// TestCheckDirFindsGaps pins the checker itself against a synthetic
// package with every kind of documentation gap.
func TestCheckDirFindsGaps(t *testing.T) {
	dir := t.TempDir()
	src := `package gappy

import "errors"

type Exposed struct{}

func (e *Exposed) Method() {}

func Function() {}

const Answer = 42

var ErrGone = errors.New("gone")

// documented is fine undocumented-looking but unexported.
func documented() {}

type hidden struct{}

func (h hidden) Method() {}
`
	if err := os.WriteFile(filepath.Join(dir, "gappy.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Expected gaps: package comment, Exposed, Method, Function, Answer,
	// ErrGone. The unexported func/type/method must not be flagged.
	if len(problems) != 6 {
		t.Fatalf("got %d problems, want 6:\n%v", len(problems), problems)
	}
	wantSubstrings := []string{
		"package gappy has no package comment",
		"exported type Exposed is undocumented",
		"exported method Method is undocumented",
		"exported function Function is undocumented",
		"exported const Answer is undocumented",
		"exported var ErrGone is undocumented",
	}
	for i, want := range wantSubstrings {
		found := false
		for _, p := range problems {
			if p.Message == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected problem %d %q in %v", i, want, problems)
		}
	}
}

// TestCheckDirAcceptsGroupDocs pins the grouped-declaration rule: a doc
// comment on a const/var block covers its specs.
func TestCheckDirAcceptsGroupDocs(t *testing.T) {
	dir := t.TempDir()
	src := `// Package tidy is fully documented.
package tidy

// The sizes, grouped under one comment.
const (
	Small = 1
	Large = 2
)

// Name is documented per spec.
var Name = "tidy"

// Thing is a documented type.
type Thing struct{}

// Do is a documented method.
func (t *Thing) Do() {}
`
	if err := os.WriteFile(filepath.Join(dir, "tidy.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean package flagged: %v", problems)
	}
}

// TestCheckMarkdown pins the link checker: broken relative links are
// flagged; external URLs, anchors, and anchored relative links are not.
func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("# hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := `# Doc
[good](exists.md) and [anchored](exists.md#section) are fine.
[external](https://example.com/nope) and [anchor](#local) are skipped.
[broken](missing.md) must be flagged.
![broken image](missing.png) too.
`
	path := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := CheckMarkdown(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2 (missing.md, missing.png): %v", len(problems), problems)
	}
	if problems[0].Line != 4 || problems[1].Line != 5 {
		t.Fatalf("problem lines = %d,%d, want 4,5", problems[0].Line, problems[1].Line)
	}
}
