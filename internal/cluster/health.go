package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health probing: one goroutine ticks every ProbeInterval and probes
// every replica's /readyz in parallel through the fault-injectable
// transport. Rise/fall hysteresis keeps one flaky probe from flapping a
// replica's routable state; an unhealthy→healthy transition triggers an
// asynchronous resync of the replica onto each deployment's recorded
// target version (promote.go).

// probeLoop runs until Close.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	tick := time.NewTicker(rt.opt.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every replica once, in parallel, and applies the
// hysteresis transitions.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *Replica) {
			defer wg.Done()
			rt.probeOne(rep)
		}(rep)
	}
	wg.Wait()
}

// probeOne runs one /readyz round trip and feeds the result through the
// replica's rise/fall counters. The counters are only ever touched from
// probe goroutines, one per replica per round, so they need no lock —
// probeAll joins every round before the next begins.
func (rt *Router) probeOne(rep *Replica) {
	ok := rt.probe(rep)
	now := rt.opt.Now()
	if ok {
		rep.succStreak++
		rep.failStreak = 0
		rep.probeBack(now)
		if !rep.healthy.Load() && rep.succStreak >= rt.opt.Rise {
			rep.healthy.Store(true)
			go rt.resyncReplica(rep)
		}
	} else {
		rep.failStreak++
		rep.succStreak = 0
		if rep.healthy.Load() && rep.failStreak >= rt.opt.Fall {
			rep.healthy.Store(false)
		}
	}
}

// probe runs one GET /readyz against the replica.
func (rt *Router) probe(rep *Replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// healthyCount reports how many replicas are currently healthy.
func (rt *Router) healthyCount() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.Healthy() {
			n++
		}
	}
	return n
}
