package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState names a replica circuit breaker's position.
type BreakerState string

// The breaker states: closed admits traffic, open ejects the replica,
// half-open admits one trial request.
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// Replica is one registered replica process: its routable state (health
// from the prober, breaker from request outcomes) plus request
// counters.
type Replica struct {
	url string

	// healthy is the prober's verdict, behind rise/fall hysteresis.
	healthy atomic.Bool
	// succStreak/failStreak are prober-goroutine-owned hysteresis
	// counters.
	succStreak, failStreak int

	// Breaker state, driven by request outcomes (and re-admitted by
	// clean health probes once the cooldown passes).
	bmu         sync.Mutex
	state       BreakerState
	consecFails int
	openUntil   time.Time
	cooldown    time.Duration

	threshold         int
	baseCool, maxCool time.Duration

	requests, failures, retries atomic.Int64
	errMu                       sync.Mutex
	lastErr                     string
}

func newReplica(url string, opt Options) *Replica {
	return &Replica{
		url:       url,
		state:     BreakerClosed,
		cooldown:  opt.BreakerCooldown,
		threshold: opt.BreakerThreshold,
		baseCool:  opt.BreakerCooldown,
		maxCool:   opt.BreakerMaxCooldown,
	}
}

// URL returns the replica's base URL.
func (r *Replica) URL() string { return r.url }

// Healthy reports the prober's current verdict.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// Breaker reports the breaker's current state.
func (r *Replica) Breaker() BreakerState {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	return r.state
}

// routable reports whether a request may be sent to this replica now:
// healthy per the prober, and admitted by the breaker. In the open
// state, the first call after the cooldown expires transitions to
// half-open and admits exactly one trial; further calls are refused
// until the trial's outcome lands.
func (r *Replica) routable(now time.Time) bool {
	if !r.healthy.Load() {
		return false
	}
	r.bmu.Lock()
	defer r.bmu.Unlock()
	switch r.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(r.openUntil) {
			return false
		}
		r.state = BreakerHalfOpen
		return true
	default: // half-open: one trial is already in flight
		return false
	}
}

// onSuccess records a successful attempt: the breaker closes and its
// cooldown resets.
func (r *Replica) onSuccess() {
	r.bmu.Lock()
	r.consecFails = 0
	r.state = BreakerClosed
	r.cooldown = r.baseCool
	r.bmu.Unlock()
}

// onFailure records a failed attempt. Crossing the consecutive-failure
// threshold opens the breaker; a failed half-open trial re-opens it
// with a doubled cooldown (capped).
func (r *Replica) onFailure(now time.Time, errMsg string) {
	r.errMu.Lock()
	r.lastErr = errMsg
	r.errMu.Unlock()
	r.failures.Add(1)
	r.bmu.Lock()
	defer r.bmu.Unlock()
	r.consecFails++
	switch r.state {
	case BreakerHalfOpen:
		r.cooldown *= 2
		if r.cooldown > r.maxCool {
			r.cooldown = r.maxCool
		}
		r.state = BreakerOpen
		r.openUntil = now.Add(r.cooldown)
	case BreakerClosed:
		if r.consecFails >= r.threshold {
			r.state = BreakerOpen
			r.openUntil = now.Add(r.cooldown)
		}
	}
}

// probeBack re-admits an ejected replica on a clean health probe once
// its cooldown has passed — the breaker's probe-back path when no
// client traffic arrives to run a half-open trial.
func (r *Replica) probeBack(now time.Time) {
	r.bmu.Lock()
	if r.state == BreakerOpen && !now.Before(r.openUntil) {
		r.state = BreakerClosed
		r.consecFails = 0
		r.cooldown = r.baseCool
	}
	r.bmu.Unlock()
}

// LastError returns the most recent attempt failure against this
// replica.
func (r *Replica) LastError() string {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.lastErr
}

// Status snapshots the replica for the aggregated stats view.
func (r *Replica) Status() ReplicaStatus {
	r.bmu.Lock()
	state, consec := r.state, r.consecFails
	r.bmu.Unlock()
	return ReplicaStatus{
		URL:                 r.url,
		Healthy:             r.healthy.Load(),
		Breaker:             state,
		ConsecutiveFailures: consec,
		Requests:            r.requests.Load(),
		Failures:            r.failures.Load(),
		Retries:             r.retries.Load(),
		LastError:           r.LastError(),
	}
}
