package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/deploy"
	"repro/internal/fleetstate"
)

// versionHeader carries a snapshot's deployment version (the serve
// front's X-Overton-Version).
const versionHeader = "X-Overton-Version"

// stepTimeout bounds one control-plane round trip during a rolling
// promote (ship, promote, rollback, stats read).
const stepTimeout = 30 * time.Second

// StepResult records one replica's outcome in a rolling promote or
// fleet rollback.
type StepResult struct {
	Replica string `json:"replica"`
	// Action is what happened: "promoted", "skipped" (replica was
	// unhealthy or crashed mid-step; it resyncs on probe-back),
	// "rolled-back", or "gate-failed".
	Action string `json:"action"`
	Detail string `json:"detail,omitempty"`
}

// promoteResponse is the router's answer to a rolling promote.
type promoteResponse struct {
	Model   string       `json:"model"`
	Version int          `json:"version"`
	Steps   []StepResult `json:"steps"`
	// RolledBack reports that a gate failure undid the rollout.
	RolledBack bool `json:"rolled_back,omitempty"`
}

// handlePromote runs a rolling, gated promote across the fleet. The
// candidate artifact comes from the request body (a fleetstate-framed
// snapshot, with ?version=N) or, with an empty body, is pulled from the
// first routable replica holding a shadow. Each healthy replica is then
// stepped through ship-shadow → promote → hold → gate-check; a gate
// failure rolls every promoted replica back and answers 409, a replica
// that dies mid-step is skipped (resynced on probe-back), and success
// records the fleet-wide target version.
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	dep := r.PathValue("name")
	rt.promoteMu.Lock()
	defer rt.promoteMu.Unlock()
	framed, version, err := rt.promoteSource(r, dep)
	if err != nil {
		httpError(w, http.StatusConflict, "promote %s: %v", dep, err)
		return
	}
	resp := rt.rollingPromote(dep, framed, version)
	if resp.RolledBack {
		writeJSONStatus(w, http.StatusConflict, resp)
		return
	}
	writeJSON(w, resp)
}

// promoteSource resolves the candidate artifact: the uploaded framed
// snapshot, or the first routable replica's shadow.
func (rt *Router) promoteSource(r *http.Request, dep string) (framed []byte, version int, err error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxProxyBodyBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("read body: %w", err)
	}
	if len(body) > 0 {
		version, err = strconv.Atoi(r.URL.Query().Get("version"))
		if err != nil || version <= 0 {
			return nil, 0, fmt.Errorf("uploading an artifact needs ?version=N (positive)")
		}
		if _, err := fleetstate.DecodeSnapshot(body); err != nil {
			return nil, 0, err
		}
		return body, version, nil
	}
	now := rt.opt.Now()
	for _, rep := range rt.order(dep) {
		if !rep.Healthy() || !rep.routable(now) {
			continue
		}
		framed, version, err = rt.pullSnapshot(rep, dep, "shadow")
		if err == nil {
			return framed, version, nil
		}
	}
	if err == nil {
		err = fmt.Errorf("no routable replica")
	}
	return nil, 0, fmt.Errorf("no replica offered a shadow candidate: %v", err)
}

// rollingPromote executes the replica-by-replica rollout.
func (rt *Router) rollingPromote(dep string, framed []byte, version int) *promoteResponse {
	resp := &promoteResponse{Model: dep, Version: version}
	var promoted []*Replica
	for _, rep := range rt.replicas {
		if !rep.Healthy() {
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "skipped", Detail: "unhealthy; resyncs on probe-back"})
			continue
		}
		pre, err := rt.replicaStats(rep, dep)
		if err != nil {
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "skipped", Detail: "stats: " + err.Error()})
			continue
		}
		if pre.Version == version {
			// Already at the target (a re-run after a partial rollout).
			promoted = append(promoted, rep)
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "promoted", Detail: "already at target"})
			continue
		}
		if err := rt.shipShadow(rep, dep, framed, version); err != nil {
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "skipped", Detail: "ship: " + err.Error()})
			continue
		}
		if err := rt.replicaLifecycle(rep, dep, "promote"); err != nil {
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "skipped", Detail: "promote: " + err.Error()})
			continue
		}
		promoted = append(promoted, rep)
		rt.hold()
		post, err := rt.replicaStats(rep, dep)
		if err != nil {
			// Promoted but unreadable (likely crashed after the step):
			// leave it — convergence is the target's job now.
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "promoted", Detail: "post-hold stats: " + err.Error()})
			continue
		}
		if reason := rt.gateCheck(pre, post); reason != "" {
			resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "gate-failed", Detail: reason})
			resp.RolledBack = true
			for _, p := range promoted {
				if err := rt.replicaLifecycle(p, dep, "rollback"); err != nil {
					resp.Steps = append(resp.Steps, StepResult{Replica: p.url, Action: "skipped", Detail: "rollback: " + err.Error()})
					continue
				}
				resp.Steps = append(resp.Steps, StepResult{Replica: p.url, Action: "rolled-back"})
			}
			rt.clearTarget(dep)
			return resp
		}
		resp.Steps = append(resp.Steps, StepResult{Replica: rep.url, Action: "promoted"})
	}
	rt.setTarget(dep, version, framed)
	return resp
}

// hold sleeps the inter-step gate window (interruptible by Close).
func (rt *Router) hold() {
	select {
	case <-time.After(rt.opt.PromoteHold):
	case <-rt.stop:
	}
}

// gateCheck judges the policy gates over one replica's hold window:
// quarantine, served-error regression, shed rate, and slice gates —
// the same Policy shape the in-process improvement loop holds on.
// Slice gates are fail-closed: a gate naming a slice the replica does
// not report holds the rollout.
func (rt *Router) gateCheck(pre, post deploy.Stats) string {
	p := rt.opt.Policy
	if post.Quarantined {
		return "replica quarantined after promote"
	}
	if p.MaxRegressionErrorRate > 0 {
		dReq := post.Requests - pre.Requests
		dErr := post.Errors - pre.Errors
		minReq := p.MinRegressionRequests
		if minReq <= 0 {
			minReq = 1
		}
		if dReq >= minReq && float64(dErr)/float64(dReq) > p.MaxRegressionErrorRate {
			return fmt.Sprintf("error rate %.3f > max %.3f over %d post-promote requests", float64(dErr)/float64(dReq), p.MaxRegressionErrorRate, dReq)
		}
	}
	if p.MaxPromoteShedRate > 0 && post.Load != nil {
		var preAdmitted, preShed int64
		if pre.Load != nil {
			preAdmitted, preShed = pre.Load.Admitted, pre.Load.Shed
		}
		dShed := post.Load.Shed - preShed
		dOffered := (post.Load.Admitted - preAdmitted) + dShed
		if dOffered > 0 && float64(dShed)/float64(dOffered) > p.MaxPromoteShedRate {
			return fmt.Sprintf("shed rate %.3f > max %.3f over the hold window", float64(dShed)/float64(dOffered), p.MaxPromoteShedRate)
		}
	}
	for _, g := range p.SliceGates {
		rep, ok := post.Slices[g.Slice]
		if !ok {
			return fmt.Sprintf("slice gate %q: slice not reported by replica (fail-closed)", g.Slice)
		}
		switch {
		case g.MinUnits > 0 && rep.Units < g.MinUnits:
			return fmt.Sprintf("slice gate %q: %.0f comparison units < min %.0f", g.Slice, rep.Units, g.MinUnits)
		case g.MinAgreement > 0 && rep.Units > 0 && rep.Agreement < g.MinAgreement:
			return fmt.Sprintf("slice gate %q: agreement %.3f < min %.3f", g.Slice, rep.Agreement, g.MinAgreement)
		case g.MaxErrorRate > 0 && rep.Predicts > 0 && rep.ErrorRate > g.MaxErrorRate:
			return fmt.Sprintf("slice gate %q: error rate %.3f > max %.3f", g.Slice, rep.ErrorRate, g.MaxErrorRate)
		}
	}
	return ""
}

// handleRollback rolls every healthy replica back to its previous
// primary and forgets the deployment's target version.
func (rt *Router) handleRollback(w http.ResponseWriter, r *http.Request) {
	dep := r.PathValue("name")
	rt.promoteMu.Lock()
	defer rt.promoteMu.Unlock()
	var steps []StepResult
	for _, rep := range rt.replicas {
		if !rep.Healthy() {
			steps = append(steps, StepResult{Replica: rep.url, Action: "skipped", Detail: "unhealthy"})
			continue
		}
		if err := rt.replicaLifecycle(rep, dep, "rollback"); err != nil {
			steps = append(steps, StepResult{Replica: rep.url, Action: "skipped", Detail: err.Error()})
			continue
		}
		steps = append(steps, StepResult{Replica: rep.url, Action: "rolled-back"})
	}
	rt.clearTarget(dep)
	writeJSON(w, map[string]any{"model": dep, "steps": steps})
}

// resyncReplica converges a just-recovered replica onto every recorded
// target version — the probe-back half of "one SIGKILL costs at most
// that replica's in-flight requests". Single-flighted per replica.
func (rt *Router) resyncReplica(rep *Replica) {
	rt.targetMu.Lock()
	if rt.resyncing[rep.url] {
		rt.targetMu.Unlock()
		return
	}
	rt.resyncing[rep.url] = true
	rt.targetMu.Unlock()
	defer func() {
		rt.targetMu.Lock()
		delete(rt.resyncing, rep.url)
		rt.targetMu.Unlock()
	}()
	for dep, tgt := range rt.targetSnapshot() {
		st, err := rt.replicaStats(rep, dep)
		if err != nil || st.Version == tgt.version {
			continue
		}
		if err := rt.shipShadow(rep, dep, tgt.framed, tgt.version); err != nil {
			continue
		}
		if err := rt.replicaLifecycle(rep, dep, "promote"); err != nil {
			continue
		}
		rt.resyncs.Add(1)
	}
}

// --- replica control-plane round trips ---

// pullSnapshot downloads a framed artifact from a replica.
func (rt *Router) pullSnapshot(rep *Replica, dep, which string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/models/%s/snapshot?which=%s", rep.url, dep, which)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("replica %s: snapshot: status %d", rep.url, resp.StatusCode)
	}
	if _, err := fleetstate.DecodeSnapshot(body); err != nil {
		return nil, 0, fmt.Errorf("replica %s: %w", rep.url, err)
	}
	version, err := strconv.Atoi(resp.Header.Get(versionHeader))
	if err != nil || version <= 0 {
		return nil, 0, fmt.Errorf("replica %s: snapshot missing %s header", rep.url, versionHeader)
	}
	return body, version, nil
}

// shipShadow uploads a framed artifact into a replica's shadow slot.
func (rt *Router) shipShadow(rep *Replica, dep string, framed []byte, version int) error {
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/models/%s/shadow?version=%d", rep.url, dep, version)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(framed))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return rt.expectOK(req)
}

// replicaLifecycle POSTs one lifecycle action (promote | rollback).
func (rt *Router) replicaLifecycle(rep *Replica, dep, action string) error {
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/models/%s/%s", rep.url, dep, action)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	return rt.expectOK(req)
}

// expectOK runs one control-plane request and fails on any non-200.
func (rt *Router) expectOK(req *http.Request) error {
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// replicaStats reads one deployment's stats from a replica.
func (rt *Router) replicaStats(rep *Replica, dep string) (deploy.Stats, error) {
	ctx, cancel := context.WithTimeout(context.Background(), stepTimeout)
	defer cancel()
	url := fmt.Sprintf("%s/v1/models/%s/stats", rep.url, dep)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return deploy.Stats{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return deploy.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return deploy.Stats{}, fmt.Errorf("replica %s: stats: status %d", rep.url, resp.StatusCode)
	}
	var st deploy.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return deploy.Stats{}, fmt.Errorf("replica %s: stats: %w", rep.url, err)
	}
	return st, nil
}
