package cluster

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/deploy"
	"repro/internal/fleetstate"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Rolling gated promote and crash-resync tests run against real serve
// replicas, so the full artifact path — frame, ship, decode, install,
// promote — is exercised end to end.

func freshModel(t testing.TB) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// framedArtifact serialises a model into the checksummed snapshot frame
// the cluster ships.
func framedArtifact(t testing.TB, m *model.Model) []byte {
	t.Helper()
	b, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return fleetstate.EncodeSnapshot(b)
}

// newServeReplica starts one real replica process (in-process).
func newServeReplica(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	sv := serve.New(freshModel(t), "factoid", 1)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() { ts.Close(); sv.Close() })
	return sv, ts
}

// replicaVersion reads a replica's installed primary version directly.
func replicaVersion(t *testing.T, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/models/factoid/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Version int `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Version
}

func promoteOptions(urls ...string) Options {
	opt := testOptions(urls...)
	opt.PromoteHold = 5 * time.Millisecond
	return opt
}

func TestRollingPromoteConvergesFleet(t *testing.T) {
	_, r1 := newServeReplica(t)
	_, r2 := newServeReplica(t)
	_, r3 := newServeReplica(t)
	rt := newTestRouter(t, promoteOptions(r1.URL, r2.URL, r3.URL))
	h := rt.Handler()

	framed := framedArtifact(t, freshModel(t))
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/promote?version=2", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("promote status %d: %s", w.Code, w.Body)
	}
	var resp promoteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RolledBack || resp.Version != 2 {
		t.Fatalf("promote response %+v", resp)
	}
	promoted := 0
	for _, step := range resp.Steps {
		if step.Action == "promoted" {
			promoted++
		}
	}
	if promoted != 3 {
		t.Fatalf("%d replicas promoted, want 3: %+v", promoted, resp.Steps)
	}
	for _, ts := range []*httptest.Server{r1, r2, r3} {
		if v := replicaVersion(t, ts.URL); v != 2 {
			t.Fatalf("replica %s at version %d after promote", ts.URL, v)
		}
	}
	st := rt.Stats()
	ds, ok := st.Deployments["factoid"]
	if !ok || !ds.Converged || ds.TargetVersion != 2 {
		t.Fatalf("fleet view %+v, want converged at target 2", ds)
	}
}

func TestPromotePullsShadowWhenBodyEmpty(t *testing.T) {
	_, r1 := newServeReplica(t)
	_, r2 := newServeReplica(t)
	rt := newTestRouter(t, promoteOptions(r1.URL, r2.URL))
	h := rt.Handler()

	// Stage the candidate the fleet's normal way: upload a shadow through
	// the router (proxied to the deployment's primary replica).
	framed := framedArtifact(t, freshModel(t))
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/shadow?version=2", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("shadow upload status %d: %s", w.Code, w.Body)
	}

	// Promote with an empty body: the router pulls the staged shadow.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/models/factoid/promote", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("promote status %d: %s", w.Code, w.Body)
	}
	for _, ts := range []*httptest.Server{r1, r2} {
		if v := replicaVersion(t, ts.URL); v != 2 {
			t.Fatalf("replica %s at version %d after shadow-pull promote", ts.URL, v)
		}
	}
}

func TestGateFailureRollsBackFleet(t *testing.T) {
	_, r1 := newServeReplica(t)
	_, r2 := newServeReplica(t)
	opt := promoteOptions(r1.URL, r2.URL)
	// A gate naming a slice no replica reports is judged fail-closed, so
	// the first step trips it and the rollout must undo itself.
	opt.Policy = deploy.Policy{SliceGates: []deploy.SliceGate{{Slice: "es-queries", MinAgreement: 0.9}}}
	rt := newTestRouter(t, opt)
	h := rt.Handler()

	framed := framedArtifact(t, freshModel(t))
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/promote?version=2", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("promote status %d, want 409 gate failure: %s", w.Code, w.Body)
	}
	var resp promoteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.RolledBack {
		t.Fatalf("gate failure not marked rolled back: %+v", resp)
	}
	for _, ts := range []*httptest.Server{r1, r2} {
		if v := replicaVersion(t, ts.URL); v != 1 {
			t.Fatalf("replica %s at version %d, want rollback to 1", ts.URL, v)
		}
	}
	if tgt := rt.targetSnapshot(); len(tgt) != 0 {
		t.Fatalf("rolled-back promote left a target recorded: %v", tgt)
	}
}

// killableReplica is a real serve replica on a pinned address, so it
// can be killed and a fresh process started in its place.
type killableReplica struct {
	addr string
	sv   *serve.Server
	srv  *http.Server
}

func startKillableReplica(t *testing.T, addr string) *killableReplica {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	sv := serve.New(freshModel(t), "factoid", 1)
	srv := &http.Server{Handler: sv.Handler()}
	go func() { _ = srv.Serve(ln) }()
	k := &killableReplica{addr: ln.Addr().String(), sv: sv, srv: srv}
	t.Cleanup(func() { k.kill() })
	return k
}

// kill drops the replica abruptly: listener and connections die, as
// under SIGKILL.
func (k *killableReplica) kill() {
	_ = k.srv.Close()
	k.sv.Close()
}

func TestCrashedReplicaResyncsOnProbeBack(t *testing.T) {
	k1 := startKillableReplica(t, "")
	_, r2 := newServeReplica(t)
	_, r3 := newServeReplica(t)
	rt := newTestRouter(t, promoteOptions("http://"+k1.addr, r2.URL, r3.URL))
	h := rt.Handler()

	// Replica 1 dies; the prober ejects it.
	k1.kill()
	waitFor(t, func() bool { return !rt.replicas[0].Healthy() }, "crash ejection")

	// Promote the survivors: the dead replica is skipped, not fatal.
	framed := framedArtifact(t, freshModel(t))
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/promote?version=2", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("promote status %d with one replica down: %s", w.Code, w.Body)
	}
	var resp promoteResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, step := range resp.Steps {
		if step.Action == "skipped" {
			skipped++
		}
	}
	if skipped != 1 {
		t.Fatalf("%d steps skipped, want exactly the dead replica: %+v", skipped, resp.Steps)
	}

	// The replica restarts at the same address with the old version — the
	// prober re-admits it and the resync converges it onto the target.
	k2 := startKillableReplica(t, k1.addr)
	waitFor(t, func() bool { return rt.replicas[0].Healthy() }, "probe-back re-admission")
	waitFor(t, func() bool {
		resp, err := http.Get("http://" + k2.addr + "/v1/models/factoid/stats")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st struct {
			Version int `json:"version"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) != nil {
			return false
		}
		return st.Version == 2
	}, "resync to target version")
	// The replica reaches v2 inside the resync goroutine, a beat before
	// the router's counter is bumped — poll rather than assert.
	waitFor(t, func() bool { return rt.resyncs.Load() > 0 }, "resync accounting")
	st := rt.Stats()
	if ds := st.Deployments["factoid"]; !ds.Converged {
		t.Fatalf("fleet view not converged after resync: %+v", ds)
	}
}

// TestPromoteRejectsDamagedArtifact guards the checksummed-ship path:
// a corrupted frame must be refused before any replica is touched.
func TestPromoteRejectsDamagedArtifact(t *testing.T) {
	_, r1 := newServeReplica(t)
	rt := newTestRouter(t, promoteOptions(r1.URL))
	h := rt.Handler()

	framed := framedArtifact(t, freshModel(t))
	framed[len(framed)-1] ^= 0xFF
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/promote?version=2", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("promote status %d, want corrupt artifact refused: %s", w.Code, w.Body)
	}
	if v := replicaVersion(t, r1.URL); v != 1 {
		t.Fatalf("replica at version %d after refused promote", v)
	}
}

// TestShadowUploadRoundTrip drives the serve-side snapshot endpoints
// through the router proxy: download a framed primary, re-upload it as
// a shadow, and confirm provenance.
func TestShadowUploadRoundTrip(t *testing.T) {
	_, r1 := newServeReplica(t)
	rt := newTestRouter(t, promoteOptions(r1.URL))
	h := rt.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/models/factoid/snapshot", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(versionHeader); got != "1" {
		t.Fatalf("snapshot version header %q, want 1", got)
	}
	framed := w.Body.Bytes()
	if _, err := fleetstate.DecodeSnapshot(framed); err != nil {
		t.Fatalf("snapshot frame invalid: %v", err)
	}

	w = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/shadow?version=7", bytes.NewReader(framed))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("shadow upload status %d: %s", w.Code, w.Body)
	}
	resp, err := http.Get(r1.URL + "/v1/models/factoid/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ShadowVersion int `json:"shadow_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ShadowVersion != 7 {
		t.Fatalf("shadow version %d, want 7", st.ShadowVersion)
	}
}
