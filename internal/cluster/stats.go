package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
)

// ReplicaStatus is one replica's routable state and counters, as
// exposed on the router's stats surface.
type ReplicaStatus struct {
	URL                 string       `json:"url"`
	Healthy             bool         `json:"healthy"`
	Breaker             BreakerState `json:"breaker"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	Requests            int64        `json:"requests"`
	Failures            int64        `json:"failures"`
	Retries             int64        `json:"retries"`
	LastError           string       `json:"last_error,omitempty"`
}

// DeploymentStatus is the fleet-wide view of one deployment: the
// recorded promote target (zero before any rolling promote) and each
// healthy replica's installed version.
type DeploymentStatus struct {
	TargetVersion int `json:"target_version,omitempty"`
	// Replicas maps replica URL → installed primary version.
	Replicas map[string]int `json:"replicas"`
	// Converged reports that every healthy replica holds the same
	// version (and the target version, when one is recorded).
	Converged bool `json:"converged"`
}

// ClusterStats is the router's aggregated fleet view.
type ClusterStats struct {
	Replicas    []ReplicaStatus             `json:"replicas"`
	Deployments map[string]DeploymentStatus `json:"deployments"`
	Routed      int64                       `json:"routed"`
	Shed        int64                       `json:"shed"`
	Resyncs     int64                       `json:"resyncs"`
}

// replicaListing mirrors the slice of serve's GET /v1/models answer the
// router aggregates.
type replicaListing struct {
	Deployments []struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
	} `json:"deployments"`
}

// Stats assembles the aggregated fleet view: per-replica health and
// breaker state, and per-deployment version convergence read live from
// each healthy replica.
func (rt *Router) Stats() ClusterStats {
	st := ClusterStats{
		Deployments: map[string]DeploymentStatus{},
		Routed:      rt.routed.Load(),
		Shed:        rt.shed.Load(),
		Resyncs:     rt.resyncs.Load(),
	}
	type listed struct {
		url  string
		list replicaListing
		ok   bool
	}
	results := make([]listed, len(rt.replicas))
	var wg sync.WaitGroup
	for i, rep := range rt.replicas {
		st.Replicas = append(st.Replicas, rep.Status())
		if !rep.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			list, err := rt.listReplica(rep)
			results[i] = listed{url: rep.url, list: list, ok: err == nil}
		}(i, rep)
	}
	wg.Wait()
	targets := rt.targetSnapshot()
	for _, res := range results {
		if !res.ok {
			continue
		}
		for _, d := range res.list.Deployments {
			ds, ok := st.Deployments[d.Name]
			if !ok {
				ds = DeploymentStatus{Replicas: map[string]int{}}
			}
			ds.Replicas[res.url] = d.Version
			st.Deployments[d.Name] = ds
		}
	}
	for name, ds := range st.Deployments {
		if tgt, ok := targets[name]; ok {
			ds.TargetVersion = tgt.version
		}
		ds.Converged = converged(ds)
		st.Deployments[name] = ds
	}
	return st
}

// converged reports whether every reporting replica holds one version —
// the target version when one is recorded.
func converged(ds DeploymentStatus) bool {
	if len(ds.Replicas) == 0 {
		return false
	}
	want := ds.TargetVersion
	for _, v := range ds.Replicas {
		if want == 0 {
			want = v
		}
		if v != want {
			return false
		}
	}
	return true
}

// listReplica reads one replica's deployment listing.
func (rt *Router) listReplica(rep *Replica) (replicaListing, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/models", nil)
	if err != nil {
		return replicaListing{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return replicaListing{}, err
	}
	defer resp.Body.Close()
	var list replicaListing
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return replicaListing{}, err
	}
	return list, nil
}

// handleClusterStats serves the aggregated fleet view.
func (rt *Router) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.Stats())
}

// handleReady answers 200 while at least one replica is healthy — the
// router's own load-balancer-facing readiness.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.healthyCount() == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy replica")
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "healthy_replicas": rt.healthyCount()})
}

// handleHealth answers 200 while the router process itself is up.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}
