package cluster

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faultinject"
)

// faultTransport wraps the router's HTTP transport with the cluster's
// deterministic network failpoints, named per target host:
//
//	cluster.dial.<host>      KindError: the dial fails (connection
//	                         refused shape); KindDelay: injected network
//	                         latency before the request proceeds.
//	cluster.response.<host>  KindTorn: the response body is cut after
//	                         Bytes bytes and fails mid-read (a replica
//	                         dying mid-response); KindError: the
//	                         response fails before any byte (connection
//	                         reset).
//
// With no registry enabled each request pays two atomic nil loads —
// the same production-cost contract as every other faultinject site.
type faultTransport struct {
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	if f := faultinject.Check("cluster.dial." + host); f != nil {
		switch f.Kind {
		case faultinject.KindDelay:
			select {
			case <-time.After(f.Delay):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		default:
			return nil, fmt.Errorf("dial tcp %s: %w", host, f.Error())
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if keep, f := faultinject.Torn("cluster.response." + host); f != nil {
		switch f.Kind {
		case faultinject.KindTorn:
			resp.Body = &tornBody{r: resp.Body, remain: keep, err: f.Error()}
		case faultinject.KindDelay:
			time.Sleep(f.Delay)
		default:
			resp.Body.Close()
			return nil, fmt.Errorf("read tcp %s: %w", host, f.Error())
		}
	}
	return resp, nil
}

// tornBody yields remain bytes of the wrapped body and then fails the
// read — the exact shape of a replica killed mid-response.
type tornBody struct {
	r      io.ReadCloser
	remain int
	err    error
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, b.err
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.r.Read(p)
	b.remain -= n
	if err != nil {
		return n, err
	}
	return n, nil
}

func (b *tornBody) Close() error { return b.r.Close() }
