package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// fakeReplica is a scripted replica process: /readyz follows the ready
// flag, every other route answers the configured status.
type fakeReplica struct {
	ts     *httptest.Server
	ready  atomic.Bool
	status atomic.Int64
	hits   atomic.Int64
	body   atomic.Value // string
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	f.status.Store(http.StatusOK)
	f.body.Store(`{"ok":true}`)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if f.ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		f.hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(int(f.status.Load()))
		fmt.Fprint(w, f.body.Load().(string))
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) host(t *testing.T) string {
	t.Helper()
	u, err := url.Parse(f.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// testOptions returns fast tuning for the scripted-replica tests.
func testOptions(urls ...string) Options {
	return Options{
		Replicas:         urls,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		RequestTimeout:   3 * time.Second,
		RetryBase:        time.Millisecond,
		RetryMax:         5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  60 * time.Millisecond,
		PromoteHold:      time.Millisecond,
	}
}

func newTestRouter(t *testing.T, opt Options) *Router {
	t.Helper()
	rt, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(w, req)
	return w
}

func TestNewValidatesReplicaSet(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := New(Options{Replicas: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
}

func TestOrderIsStableAndCoversAllReplicas(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL, c.ts.URL))
	for _, dep := range []string{"factoid", "intent", "ner", "default"} {
		first := rt.order(dep)
		if len(first) != 3 {
			t.Fatalf("order(%s) returned %d replicas", dep, len(first))
		}
		seen := map[string]bool{}
		for _, rep := range first {
			seen[rep.url] = true
		}
		if len(seen) != 3 {
			t.Fatalf("order(%s) repeated a replica: %v", dep, seen)
		}
		again := rt.order(dep)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("order(%s) not deterministic", dep)
			}
		}
	}
}

func TestProxyPrefersPrimaryAndStampsReplica(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL, c.ts.URL))
	h := rt.Handler()
	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got, want := w.Header().Get("X-Overton-Replica"), rt.order("factoid")[0].url; got != want {
		t.Fatalf("served by %s, preference order says %s", got, want)
	}
}

func TestFailoverAfterReplicaDeath(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL, c.ts.URL))
	h := rt.Handler()
	primary := rt.order("factoid")[0]
	for _, f := range []*fakeReplica{a, b, c} {
		if f.ts.URL == primary.url {
			f.ts.Close() // SIGKILL shape: connections refused from now on
		}
	}
	// The prober has not noticed yet — the request itself must fail over.
	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d after replica death: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Overton-Replica"); got == primary.url {
		t.Fatalf("served by the dead replica %s", got)
	}
	if primary.failures.Load() == 0 {
		t.Fatal("dead replica's failure counter untouched")
	}
}

func TestNoRetryOn4xxOr500(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL))
	h := rt.Handler()
	for _, code := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusInternalServerError} {
		a.status.Store(int64(code))
		b.status.Store(int64(code))
		a.hits.Store(0)
		b.hits.Store(0)
		w := post(t, h, "/v1/models/factoid/predict", `{}`)
		if w.Code != code {
			t.Fatalf("status %d, want %d passed through", w.Code, code)
		}
		if total := a.hits.Load() + b.hits.Load(); total != 1 {
			t.Fatalf("%d replica hits for a %d — %d must never be retried", total, code, code)
		}
	}
}

func Test503QuarantineIsRetriedOnNextReplica(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL))
	h := rt.Handler()
	primary := rt.order("factoid")[0]
	for _, f := range []*fakeReplica{a, b} {
		if f.ts.URL == primary.url {
			f.status.Store(http.StatusServiceUnavailable)
		}
	}
	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want failover past the 503 replica: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Overton-Replica"); got == primary.url {
		t.Fatalf("served by the quarantined replica %s", got)
	}
}

func TestAllUnhealthyShedsWithRetryAfter(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	a.ready.Store(false)
	b.ready.Store(false)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL))
	h := rt.Handler()
	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 shed", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 shed without Retry-After")
	}
	var resp struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Reason != "no_healthy_replica" {
		t.Fatalf("shed body %s (err %v)", w.Body, err)
	}
	if rt.shed.Load() == 0 {
		t.Fatal("shed counter untouched")
	}
	// Router readiness mirrors the fleet: no healthy replica → not ready.
	if w := get(t, h, "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d with no healthy replica", w.Code)
	}
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz %d — liveness must not follow replica health", w.Code)
	}
}

func TestBreakerOpensThenProbesBack(t *testing.T) {
	a := newFakeReplica(t)
	opt := testOptions(a.ts.URL)
	// A long cooldown keeps a racing health probe from probing the
	// breaker back between the open assertion and the shed assertion.
	opt.BreakerCooldown = 500 * time.Millisecond
	rt := newTestRouter(t, opt)
	h := rt.Handler()
	rep := rt.replicas[0]

	a.status.Store(http.StatusServiceUnavailable)
	for i := 0; i < opt.BreakerThreshold; i++ {
		if w := post(t, h, "/v1/models/factoid/predict", `{}`); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d while replica is failing", w.Code)
		}
	}
	if got := rep.Breaker(); got != BreakerOpen {
		t.Fatalf("breaker %s after %d consecutive failures", got, opt.BreakerThreshold)
	}
	// Open breaker ejects the replica even though /readyz still passes:
	// the next request sheds without touching the replica.
	hits := a.hits.Load()
	if w := post(t, h, "/v1/models/factoid/predict", `{}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with breaker open", w.Code)
	}
	if a.hits.Load() != hits {
		t.Fatal("open breaker let a request through before the cooldown")
	}

	// Replica recovers; a clean health probe after the cooldown closes
	// the breaker with no client traffic spent on the trial.
	a.status.Store(http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for rep.Breaker() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %s after recovery", rep.Breaker())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w := post(t, h, "/v1/models/factoid/predict", `{}`); w.Code != http.StatusOK {
		t.Fatalf("status %d after probe-back", w.Code)
	}
}

func TestHealthProbeEjectsAndReadmits(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	opt := testOptions(a.ts.URL, b.ts.URL)
	rt := newTestRouter(t, opt)
	primary := rt.order("factoid")[0]
	var target *fakeReplica
	for _, f := range []*fakeReplica{a, b} {
		if f.ts.URL == primary.url {
			target = f
		}
	}

	target.ready.Store(false)
	waitFor(t, func() bool { return !primary.Healthy() }, "fall ejection")
	target.ready.Store(true)
	waitFor(t, func() bool { return primary.Healthy() }, "rise re-admission")
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Fault-injected network failures. These use the process-global
// faultinject registry, so they cannot run in parallel.

func TestTornResponseIsRetriedInvisibly(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL))
	h := rt.Handler()
	primary := rt.order("factoid")[0]
	var primaryFake *fakeReplica
	for _, f := range []*fakeReplica{a, b} {
		if f.ts.URL == primary.url {
			primaryFake = f
		}
	}
	// Because responses buffer whole before any byte reaches the client,
	// a replica dying mid-response is a retryable transport error, not a
	// corrupt client payload.
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"cluster.response."+primaryFake.host(t),
		faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 3, Err: errors.New("connection reset mid-body")},
	))
	defer faultinject.Disable()

	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want torn response hidden by retry: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Overton-Replica"); got == primary.url {
		t.Fatalf("served by the torn replica %s", got)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("client saw a corrupt body: %v (%q)", err, w.Body)
	}
}

func TestRefusedDialFailsOver(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL, b.ts.URL))
	h := rt.Handler()
	primary := rt.order("factoid")[0]
	var primaryFake *fakeReplica
	for _, f := range []*fakeReplica{a, b} {
		if f.ts.URL == primary.url {
			primaryFake = f
		}
	}
	reg := faultinject.NewRegistry().Arm(
		"cluster.dial."+primaryFake.host(t), 1,
		faultinject.Fault{Err: errors.New("connect: connection refused")},
	)
	faultinject.Enable(reg)
	defer faultinject.Disable()

	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want failover past the refused dial: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Overton-Replica"); got == primary.url {
		t.Fatalf("served by the refused replica %s", got)
	}
}

func TestInjectedLatencyTripsAttemptDeadline(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	opt := testOptions(a.ts.URL, b.ts.URL)
	opt.AttemptTimeout = 50 * time.Millisecond
	rt := newTestRouter(t, opt)
	h := rt.Handler()
	primary := rt.order("factoid")[0]
	var primaryFake *fakeReplica
	for _, f := range []*fakeReplica{a, b} {
		if f.ts.URL == primary.url {
			primaryFake = f
		}
	}
	// The injected latency outlasts the attempt deadline but not the
	// request deadline, so the slow replica is abandoned and the request
	// still lands.
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"cluster.dial."+primaryFake.host(t),
		faultinject.Fault{Kind: faultinject.KindDelay, Delay: 2 * time.Second},
	))
	defer faultinject.Disable()

	start := time.Now()
	w := post(t, h, "/v1/models/factoid/predict", `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want slow replica abandoned: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Overton-Replica"); got == primary.url {
		t.Fatalf("served by the slow replica %s", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request took %v — attempt deadline did not fire", elapsed)
	}
}

func TestProxyBodyTooLargeRefused(t *testing.T) {
	a := newFakeReplica(t)
	rt := newTestRouter(t, testOptions(a.ts.URL))
	h := rt.Handler()
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/models/factoid/predict", io.LimitReader(neverEnding('x'), maxProxyBodyBytes+1))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 for an unbuffered-unretryable body", w.Code)
	}
}

type neverEnding byte

func (b neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(b)
	}
	return len(p), nil
}
