package cluster

import "net/http"

// Handler returns the router's HTTP surface. Deployment data-plane
// routes proxy with failover; /promote and /rollback run the rolling
// fleet operations instead of proxying; /v1/cluster/stats (also served
// at /stats) is the aggregated fleet view.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	// Fleet control plane — handled by the router itself.
	mux.HandleFunc("POST /v1/models/{name}/promote", rt.handlePromote)
	mux.HandleFunc("POST /v1/models/{name}/rollback", rt.handleRollback)
	mux.HandleFunc("GET /v1/cluster/stats", rt.handleClusterStats)
	mux.HandleFunc("GET /stats", rt.handleClusterStats)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)

	// Deployment data plane — proxied along the deployment's replica
	// preference order with retry/failover.
	for _, route := range []string{
		"POST /v1/models/{name}/predict",
		"POST /v1/models/{name}/ingest",
		"POST /v1/models/{name}/loop",
		"GET /v1/models/{name}/loop",
		"POST /v1/models/{name}/limits",
		"GET /v1/models/{name}/limits",
		"GET /v1/models/{name}/stats",
		"GET /v1/models/{name}/signature",
		"POST /v1/models/{name}/slices",
		"GET /v1/models/{name}/slices",
		"POST /v1/models/{name}/alerts",
		"GET /v1/models/{name}/alerts",
		"GET /v1/models/{name}/snapshot",
		"POST /v1/models/{name}/shadow",
		"POST /predict", // legacy single-model surface
	} {
		mux.HandleFunc(route, rt.handleProxy)
	}

	// Fleet-wide reads — any routable replica answers.
	for _, route := range []string{
		"GET /v1/models",
		"GET /v1/models/{$}",
		"POST /v1/query",
		"GET /v1/telemetry",
	} {
		mux.HandleFunc(route, rt.handleProxyAny)
	}
	return mux
}
