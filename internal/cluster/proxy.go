package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// maxProxyBodyBytes bounds a buffered request body. Bodies are buffered
// whole so a retried attempt can replay them; anything bigger than this
// is refused rather than silently made unretryable.
const maxProxyBodyBytes = 32 << 20

// handleProxy forwards one deployment-scoped request with failover:
// attempts walk the deployment's replica preference order, retrying
// retryable failures with exponential backoff + jitter under the
// request deadline. Responses are buffered whole before any byte
// reaches the client, so a replica dying mid-response is retried
// invisibly — and a response that has started flowing is never retried,
// because flowing only starts after the full body arrived.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	dep := r.PathValue("name")
	if dep == "" {
		dep = "default" // legacy single-model surface
	}
	rt.proxy(w, r, dep)
}

// handleProxyAny forwards a fleet-wide request (listing, query,
// telemetry counters) to any routable replica.
func (rt *Router) handleProxyAny(w http.ResponseWriter, r *http.Request) {
	rt.proxy(w, r, "")
}

func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, dep string) {
	start := rt.opt.Now()
	rt.routed.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "request body: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.RequestTimeout)
	defer cancel()

	order := rt.order(dep)
	tried := map[*Replica]bool{}
	attempts := 0
	lastErr := "no routable replica"
	for attempts <= rt.opt.MaxRetries {
		rep := rt.pick(order, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempts > 0 {
			rep.retries.Add(1)
			if !rt.backoff(ctx, attempts) {
				break // request deadline spent
			}
		}
		attempts++
		res, err := rt.attempt(ctx, rep, r, body)
		if err == nil && res.status != http.StatusServiceUnavailable {
			rep.onSuccess()
			rt.writeProxied(w, rep, res)
			rt.emitRoute(dep, rep.url, attempts, res.status, rt.sinceMillis(start), res.status >= 500)
			return
		}
		if err != nil {
			lastErr = err.Error()
		} else {
			lastErr = fmt.Sprintf("replica %s: 503", rep.url)
		}
		rep.onFailure(rt.opt.Now(), lastErr)
		if ctx.Err() != nil {
			break
		}
	}
	// Every routable replica failed (or none was routable): shed with
	// the fleet's admission semantics — typed 503 + Retry-After.
	rt.shed.Add(1)
	rt.emitRoute(dep, "", attempts, http.StatusServiceUnavailable, rt.sinceMillis(start), true)
	w.Header().Set("Retry-After", retryAfterSeconds(rt.opt.ProbeInterval*time.Duration(rt.opt.Rise)))
	writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{
		"error":  fmt.Sprintf("no healthy replica for %q after %d attempts: %s", depLabel(dep), attempts, lastErr),
		"reason": "no_healthy_replica",
	})
}

func depLabel(dep string) string {
	if dep == "" {
		return "fleet"
	}
	return dep
}

// pick returns the first routable, untried replica in preference order.
func (rt *Router) pick(order []*Replica, tried map[*Replica]bool) *Replica {
	now := rt.opt.Now()
	for _, rep := range order {
		if tried[rep] {
			continue
		}
		if rep.routable(now) {
			return rep
		}
	}
	return nil
}

// backoff sleeps base·2^(attempt-1) plus up-to-equal jitter, capped at
// RetryMax, bounded by the request deadline. Reports false when the
// deadline fired first.
func (rt *Router) backoff(ctx context.Context, attempt int) bool {
	d := rt.opt.RetryBase << (attempt - 1)
	if d > rt.opt.RetryMax {
		d = rt.opt.RetryMax
	}
	d += time.Duration(rand.Int63n(int64(d)))
	if d > rt.opt.RetryMax {
		d = rt.opt.RetryMax
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// proxiedResponse is one fully-buffered upstream response.
type proxiedResponse struct {
	status int
	header http.Header
	body   []byte
}

// attempt runs one request against one replica, buffering the response
// body entirely — a mid-body failure surfaces here as an error, before
// anything has flowed to the client, which is what makes it retryable.
func (rt *Router) attempt(ctx context.Context, rep *Replica, orig *http.Request, body []byte) (*proxiedResponse, error) {
	rep.requests.Add(1)
	actx := ctx
	if rt.opt.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rt.opt.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, orig.Method, rep.url+orig.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = orig.Header.Clone()
	req.Header.Del("Connection")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replica %s: read response: %w", rep.url, err)
	}
	return &proxiedResponse{status: resp.StatusCode, header: resp.Header, body: respBody}, nil
}

// writeProxied copies one buffered upstream response to the client,
// stamping which replica served it.
func (rt *Router) writeProxied(w http.ResponseWriter, rep *Replica, res *proxiedResponse) {
	h := w.Header()
	for _, k := range []string{"Content-Type", "Retry-After", versionHeader} {
		if v := res.header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set("X-Overton-Replica", rep.url)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

func (rt *Router) sinceMillis(start time.Time) float64 {
	return float64(rt.opt.Now().Sub(start).Microseconds()) / 1000.0
}

// retryAfterSeconds renders a backoff hint as an HTTP Retry-After
// value: whole seconds, in [1, 60] — the serve front's convention.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
