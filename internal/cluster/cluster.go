// Package cluster is the fault-tolerant routing tier over N Overton
// replica processes — the layer that turns one-process fleets into a
// multi-replica serving cluster that survives replica loss, slow
// replicas, and mid-promote crashes without client-visible damage.
//
// The Router spreads deployments across its replicas by rendezvous
// hashing: each deployment gets a stable per-deployment preference
// order over the replica set, so load partitions by deployment while
// every replica can still serve every deployment on failover. The
// fault-handling machinery is the core:
//
//   - health: every replica's /readyz is probed on an interval, with
//     rise/fall hysteresis so one flaky probe neither ejects nor
//     re-admits a replica;
//   - deadlines: every proxied request runs under a request deadline,
//     and each attempt under an attempt deadline;
//   - retry: retryable failures (connection refused/reset, attempt
//     timeout, torn response, replica 503) are retried with exponential
//     backoff + jitter on the next replica in preference order — never
//     on 4xx, never on 500 (a contained model panic is deterministic),
//     and never after response bytes have flowed to the client
//     (responses are buffered whole before forwarding, so a torn
//     upstream body is retryable);
//   - circuit breaker: consecutive failures eject a replica
//     (open), a cooldown later one trial (half-open) or a clean health
//     probe re-admits it, and a failed trial doubles the cooldown;
//   - shedding: when no routable replica remains for a deployment the
//     router sheds with a typed 503 + Retry-After, mirroring the
//     fleet's ShedError admission semantics.
//
// Promotion becomes a rolling, gated rollout (promote.go): the
// candidate artifact — pulled from a replica's shadow slot or uploaded
// with the promote request — is framed with fleetstate's checksummed
// snapshot encoding and shipped replica by replica: install shadow,
// promote, hold, then judge the deploy.Policy gates (regression error
// rate, shed rate, slice gates) against that replica's stats before
// touching the next. A gate failure rolls the fleet back; a replica
// that crashes mid-rollout is skipped and resynced to the recorded
// target version when its health probe re-admits it.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deploy"
	"repro/internal/telemetry"
)

// Tuning defaults, applied by Options.withDefaults.
const (
	defaultProbeInterval    = 500 * time.Millisecond
	defaultProbeTimeout     = time.Second
	defaultRiseFall         = 2
	defaultRequestTimeout   = 10 * time.Second
	defaultMaxRetries       = 2
	defaultRetryBase        = 25 * time.Millisecond
	defaultRetryMax         = time.Second
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 2 * time.Second
	defaultBreakerMaxCool   = 30 * time.Second
	defaultPromoteHold      = 2 * time.Second
)

// Options configures a Router. Zero fields take the defaults noted on
// each.
type Options struct {
	// Replicas are the replica base URLs ("http://host:port"). At least
	// one is required.
	Replicas []string
	// ProbeInterval is the /readyz probe period (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// Rise is how many consecutive probe successes re-admit an unhealthy
	// replica; Fall how many consecutive failures eject a healthy one
	// (default 2 each).
	Rise, Fall int
	// RequestTimeout bounds one proxied request end to end, retries
	// included (default 10s).
	RequestTimeout time.Duration
	// AttemptTimeout bounds a single attempt against one replica; zero
	// leaves only the request deadline.
	AttemptTimeout time.Duration
	// MaxRetries bounds retries after the first attempt (default 2, so
	// at most 3 replicas are tried per request).
	MaxRetries int
	// RetryBase/RetryMax shape the exponential backoff between attempts:
	// base·2^attempt plus up-to-equal jitter, capped at RetryMax
	// (defaults 25ms / 1s).
	RetryBase, RetryMax time.Duration
	// BreakerThreshold is how many consecutive failures open a replica's
	// circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is the initial open interval; each failed
	// half-open trial doubles it up to BreakerMaxCooldown (defaults
	// 2s / 30s).
	BreakerCooldown, BreakerMaxCooldown time.Duration
	// PromoteHold is how long a rolling promote holds after each
	// replica's promotion before judging the gates (default 2s).
	PromoteHold time.Duration
	// Policy supplies the gates judged between rolling-promote steps:
	// MaxRegressionErrorRate/MinRegressionRequests, MaxPromoteShedRate,
	// and SliceGates (judged fail-closed against replica stats).
	Policy deploy.Policy
	// Telemetry, when set, receives one StreamRoute event per proxied
	// request (replica, attempts, code, latency).
	Telemetry *telemetry.Logger
	// Transport overrides the HTTP transport (tests). The router wraps
	// it with the faultinject network sites either way.
	Transport http.RoundTripper
	// Now is the router's clock (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = defaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = defaultProbeTimeout
	}
	if o.Rise <= 0 {
		o.Rise = defaultRiseFall
	}
	if o.Fall <= 0 {
		o.Fall = defaultRiseFall
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = defaultRequestTimeout
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.RetryBase <= 0 {
		o.RetryBase = defaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = defaultRetryMax
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = defaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = defaultBreakerCooldown
	}
	if o.BreakerMaxCooldown <= 0 {
		o.BreakerMaxCooldown = defaultBreakerMaxCool
	}
	if o.PromoteHold <= 0 {
		o.PromoteHold = defaultPromoteHold
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	return o
}

// Router is the cluster routing front. Create with New, serve
// Handler(), stop with Close.
type Router struct {
	opt      Options
	replicas []*Replica
	client   *http.Client

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// promoteMu serialises rolling promotes and fleet rollbacks.
	promoteMu sync.Mutex
	// targetMu guards the promote targets and resync single-flight set.
	targetMu  sync.Mutex
	targets   map[string]*promoteTarget
	resyncing map[string]bool

	routed, shed atomic.Int64
	// resyncs counts completed replica resyncs (stats + tests).
	resyncs atomic.Int64
}

// promoteTarget is the fleet-wide desired state of one deployment after
// a rolling promote: the version and the framed artifact to resync
// late-returning replicas with.
type promoteTarget struct {
	version int
	framed  []byte
}

// New builds a router over the replica set and starts its health
// prober. One synchronous probe round runs first so the router opens
// with real health state rather than optimism.
func New(opt Options) (*Router, error) {
	opt = opt.withDefaults()
	if len(opt.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	rt := &Router{
		opt:       opt,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		targets:   map[string]*promoteTarget{},
		resyncing: map[string]bool{},
	}
	seen := map[string]bool{}
	for _, u := range opt.Replicas {
		u = strings.TrimRight(u, "/")
		if u == "" || seen[u] {
			return nil, fmt.Errorf("cluster: empty or duplicate replica url %q", u)
		}
		seen[u] = true
		rt.replicas = append(rt.replicas, newReplica(u, opt))
	}
	rt.client = &http.Client{Transport: &faultTransport{base: opt.Transport}}
	rt.probeAll() // synchronous first round: open with real health
	for _, rep := range rt.replicas {
		// Bootstrap skips the rise hysteresis: a replica that answered
		// its first probe is routable immediately — hysteresis exists to
		// damp flapping transitions, and there is no prior state to flap
		// from.
		rep.healthy.Store(rep.succStreak > 0)
	}
	go rt.probeLoop()
	return rt, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own deadlines. Safe to call more than once.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// Replicas returns the replica set (stable order — the rolling-promote
// order).
func (rt *Router) Replicas() []*Replica {
	return rt.replicas
}

// order returns the deployment's replica preference order: rendezvous
// hashing over (deployment, replica URL), so each deployment gets a
// stable primary replica and a deterministic failover sequence, and
// deployments spread across the set.
func (rt *Router) order(dep string) []*Replica {
	type scored struct {
		rep   *Replica
		score uint64
	}
	ss := make([]scored, len(rt.replicas))
	for i, rep := range rt.replicas {
		h := fnv.New64a()
		_, _ = h.Write([]byte(dep))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(rep.url))
		ss[i] = scored{rep, h.Sum64()}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].rep.url < ss[j].rep.url
	})
	out := make([]*Replica, len(ss))
	for i, s := range ss {
		out[i] = s.rep
	}
	return out
}

// setTarget records a deployment's fleet-wide desired version.
func (rt *Router) setTarget(dep string, version int, framed []byte) {
	rt.targetMu.Lock()
	rt.targets[dep] = &promoteTarget{version: version, framed: framed}
	rt.targetMu.Unlock()
}

// clearTarget forgets a deployment's desired version (fleet rollback).
func (rt *Router) clearTarget(dep string) {
	rt.targetMu.Lock()
	delete(rt.targets, dep)
	rt.targetMu.Unlock()
}

// targetSnapshot copies the current promote targets.
func (rt *Router) targetSnapshot() map[string]*promoteTarget {
	rt.targetMu.Lock()
	defer rt.targetMu.Unlock()
	out := make(map[string]*promoteTarget, len(rt.targets))
	for k, v := range rt.targets {
		out[k] = v
	}
	return out
}

// emitRoute logs one routed request on the telemetry route stream.
func (rt *Router) emitRoute(dep, replica string, attempts, code int, ms float64, failed bool) {
	l := rt.opt.Telemetry
	if l == nil {
		return
	}
	errFlag := 0
	if failed {
		errFlag = 1
	}
	l.Emit(telemetry.Event{
		Stream: telemetry.StreamRoute,
		Dep:    dep,
		Fields: map[string]any{
			"replica":    replica,
			"attempts":   attempts,
			"code":       code,
			"latency_ms": ms,
			"err":        errFlag,
		},
	})
}
