// Package artifact implements the model store Overton writes deployable
// binaries to: a content-addressed blob store (the "S3-like data store that
// is accessible from the production infrastructure") plus a named version
// registry. Versioning is the extension the paper flags as missing
// ("Overton does not have support for model versioning, which is likely a
// design oversight") — here every Put creates an immutable version and
// serving can pin or follow latest.
//
// Layout:
//
//	<root>/blobs/<digest[:2]>/<digest>   immutable model bytes
//	<root>/registry.json                 name -> versions -> digest+metadata
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Metadata is free-form artifact annotation (tuning choice, dev score,
// large/small pairing, training data digest, ...).
type Metadata map[string]string

// VersionInfo describes one immutable model version.
type VersionInfo struct {
	Version  int      `json:"version"`
	Digest   string   `json:"digest"`
	Metadata Metadata `json:"metadata,omitempty"`
}

// registry is the on-disk index.
type registry struct {
	Models map[string][]VersionInfo `json:"models"`
}

// Store is a local artifact store.
type Store struct {
	root string
	mu   sync.Mutex
}

// Open creates or opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{root: dir}, nil
}

func (s *Store) registryPath() string { return filepath.Join(s.root, "registry.json") }

func (s *Store) loadRegistry() (*registry, error) {
	reg := &registry{Models: map[string][]VersionInfo{}}
	data, err := os.ReadFile(s.registryPath())
	if os.IsNotExist(err) {
		return reg, nil
	}
	if err != nil {
		return nil, fmt.Errorf("artifact: registry: %w", err)
	}
	if err := json.Unmarshal(data, reg); err != nil {
		return nil, fmt.Errorf("artifact: registry corrupt: %w", err)
	}
	return reg, nil
}

func (s *Store) saveRegistry(reg *registry) error {
	data, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return fmt.Errorf("artifact: registry: %w", err)
	}
	tmp := s.registryPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("artifact: registry: %w", err)
	}
	return os.Rename(tmp, s.registryPath())
}

// Put stores data as the next version of name and returns its version info.
// Identical bytes are deduplicated by content address.
func (s *Store) Put(name string, data []byte, meta Metadata) (VersionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return VersionInfo{}, fmt.Errorf("artifact: empty model name")
	}
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	blobDir := filepath.Join(s.root, "blobs", digest[:2])
	if err := os.MkdirAll(blobDir, 0o755); err != nil {
		return VersionInfo{}, fmt.Errorf("artifact: %w", err)
	}
	blobPath := filepath.Join(blobDir, digest)
	if _, err := os.Stat(blobPath); os.IsNotExist(err) {
		tmp := blobPath + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return VersionInfo{}, fmt.Errorf("artifact: blob: %w", err)
		}
		if err := os.Rename(tmp, blobPath); err != nil {
			return VersionInfo{}, fmt.Errorf("artifact: blob: %w", err)
		}
	}
	reg, err := s.loadRegistry()
	if err != nil {
		return VersionInfo{}, err
	}
	versions := reg.Models[name]
	vi := VersionInfo{Version: len(versions) + 1, Digest: digest, Metadata: meta}
	reg.Models[name] = append(versions, vi)
	if err := s.saveRegistry(reg); err != nil {
		return VersionInfo{}, err
	}
	return vi, nil
}

// Get returns the bytes and info of name at version (0 = latest).
func (s *Store) Get(name string, version int) ([]byte, VersionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, err := s.loadRegistry()
	if err != nil {
		return nil, VersionInfo{}, err
	}
	versions := reg.Models[name]
	if len(versions) == 0 {
		return nil, VersionInfo{}, fmt.Errorf("artifact: unknown model %q", name)
	}
	var vi VersionInfo
	if version == 0 {
		vi = versions[len(versions)-1]
	} else {
		found := false
		for _, v := range versions {
			if v.Version == version {
				vi = v
				found = true
				break
			}
		}
		if !found {
			return nil, VersionInfo{}, fmt.Errorf("artifact: model %q has no version %d", name, version)
		}
	}
	data, err := os.ReadFile(filepath.Join(s.root, "blobs", vi.Digest[:2], vi.Digest))
	if err != nil {
		return nil, VersionInfo{}, fmt.Errorf("artifact: blob %s: %w", vi.Digest, err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != vi.Digest {
		return nil, VersionInfo{}, fmt.Errorf("artifact: blob %s corrupted", vi.Digest)
	}
	return data, vi, nil
}

// Versions lists the versions of name, oldest first.
func (s *Store) Versions(name string) ([]VersionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, err := s.loadRegistry()
	if err != nil {
		return nil, err
	}
	out := append([]VersionInfo(nil), reg.Models[name]...)
	return out, nil
}

// Models lists all model names, sorted.
func (s *Store) Models() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, err := s.loadRegistry()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(reg.Models))
	for n := range reg.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// PairKey is the metadata key linking a "large" analysis model with its
// "small" SLA-bound sibling trained on the same data (Section 2.4, "make it
// easy to manage ancillary data products").
const PairKey = "pair"

// Pair records that largeName and smallName are siblings by annotating the
// latest version of each.
func (s *Store) Pair(largeName, smallName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, err := s.loadRegistry()
	if err != nil {
		return err
	}
	lv := reg.Models[largeName]
	sv := reg.Models[smallName]
	if len(lv) == 0 || len(sv) == 0 {
		return fmt.Errorf("artifact: both models must exist to pair")
	}
	annotate := func(vs []VersionInfo, sibling string) {
		last := &vs[len(vs)-1]
		if last.Metadata == nil {
			last.Metadata = Metadata{}
		}
		last.Metadata[PairKey] = sibling
	}
	annotate(lv, smallName)
	annotate(sv, largeName)
	reg.Models[largeName] = lv
	reg.Models[smallName] = sv
	return s.saveRegistry(reg)
}
