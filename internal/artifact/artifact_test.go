package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	data := []byte("model-bytes-v1")
	vi, err := s.Put("factoid", data, Metadata{"dev": "0.91"})
	if err != nil {
		t.Fatal(err)
	}
	if vi.Version != 1 || vi.Digest == "" {
		t.Fatalf("version info wrong: %+v", vi)
	}
	got, gi, err := s.Get("factoid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("bytes differ")
	}
	if gi.Metadata["dev"] != "0.91" {
		t.Fatalf("metadata lost")
	}
}

func TestVersioning(t *testing.T) {
	s := openStore(t)
	for i := 1; i <= 3; i++ {
		if _, err := s.Put("m", []byte(fmt.Sprintf("v%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Latest.
	data, vi, err := s.Get("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v3" || vi.Version != 3 {
		t.Fatalf("latest wrong: %s %d", data, vi.Version)
	}
	// Pinned old version.
	data, vi, err = s.Get("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v1" || vi.Version != 1 {
		t.Fatalf("pinned wrong")
	}
	// Missing version.
	if _, _, err := s.Get("m", 9); err == nil {
		t.Fatalf("missing version accepted")
	}
	vs, err := s.Versions("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Version != 1 || vs[2].Version != 3 {
		t.Fatalf("versions wrong: %+v", vs)
	}
}

func TestContentDeduplication(t *testing.T) {
	s := openStore(t)
	v1, err := s.Put("a", []byte("same"), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Put("b", []byte("same"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Digest != v2.Digest {
		t.Fatalf("same bytes, different digests")
	}
}

func TestUnknownModel(t *testing.T) {
	s := openStore(t)
	if _, _, err := s.Get("nope", 0); err == nil {
		t.Fatalf("unknown model accepted")
	}
	if _, err := s.Put("", []byte("x"), nil); err == nil {
		t.Fatalf("empty name accepted")
	}
}

func TestModelsListing(t *testing.T) {
	s := openStore(t)
	s.Put("zeta", []byte("1"), nil)
	s.Put("alpha", []byte("2"), nil)
	names, err := s.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Models wrong: %v", names)
	}
}

func TestCorruptBlobDetected(t *testing.T) {
	s := openStore(t)
	vi, err := s.Put("m", []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := filepath.Join(s.root, "blobs", vi.Digest[:2], vi.Digest)
	if err := os.WriteFile(blob, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("m", 0); err == nil {
		t.Fatalf("corruption not detected")
	}
}

func TestPairing(t *testing.T) {
	s := openStore(t)
	s.Put("large", []byte("L"), nil)
	s.Put("small", []byte("S"), nil)
	if err := s.Pair("large", "small"); err != nil {
		t.Fatal(err)
	}
	_, vi, err := s.Get("large", 0)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Metadata[PairKey] != "small" {
		t.Fatalf("pairing metadata missing: %+v", vi.Metadata)
	}
	_, vi2, _ := s.Get("small", 0)
	if vi2.Metadata[PairKey] != "large" {
		t.Fatalf("reverse pairing missing")
	}
	if err := s.Pair("large", "ghost"); err == nil {
		t.Fatalf("pairing with missing model accepted")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := openStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Put("cc", []byte(fmt.Sprintf("v%d", i)), nil); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	vs, err := s.Versions("cc")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 10 {
		t.Fatalf("lost versions under concurrency: %d", len(vs))
	}
	seen := map[int]bool{}
	for _, v := range vs {
		if seen[v.Version] {
			t.Fatalf("duplicate version %d", v.Version)
		}
		seen[v.Version] = true
	}
}

func TestReopenPersists(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Put("m", []byte("x"), Metadata{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, vi, err := s2.Get("m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x" || vi.Metadata["k"] != "v" {
		t.Fatalf("store not persistent")
	}
}
