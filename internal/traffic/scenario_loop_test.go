package traffic_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/serve"
	"repro/internal/sliceql"
	"repro/internal/traffic"
	"repro/internal/train"
)

// hottestTag scans a stream's predict bodies and returns the most
// frequent request tag — the slice the skewed traffic actually
// concentrates on, so the slice gate below is guaranteed evidence.
func hottestTag(t *testing.T, stream []traffic.Request) string {
	t.Helper()
	counts := map[string]int{}
	for _, r := range stream {
		if r.Ingest {
			continue
		}
		var wire struct {
			Tags []string `json:"tags"`
		}
		if err := json.Unmarshal(r.Body, &wire); err != nil {
			t.Fatal(err)
		}
		for _, tag := range wire.Tags {
			counts[tag]++
		}
	}
	best, bestN := "", 0
	for tag, n := range counts {
		if n > bestN {
			best, bestN = tag, n
		}
	}
	if best == "" {
		t.Fatal("no tagged predict traffic in stream")
	}
	return best
}

// TestScenarioClosedLoopUnderSkew drives the continuous-improvement
// loop with skewed mixed predict/ingest traffic through the HTTP front
// and asserts the promotion gates sequence correctly: the ingest lane
// feeds the label model until a candidate retrains, mirrored predicts
// accumulate agreement and slice-gate evidence, and the policy —
// agreement threshold, shed-rate hold, and a slice gate over the
// traffic's hottest slice — promotes the candidate. Run under -race.
func TestScenarioClosedLoopUnderSkew(t *testing.T) {
	reg := deploy.NewRegistry()
	d := deploy.New("factoid", freshModel(t, 1), 1)
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	front := serve.NewFleet(reg)
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	// Skewed mixed traffic: zipf keys, half ingest half predict.
	eng := mustEngine(t, traffic.Config{
		Workload: "mixed", Seed: 11, Mix: 0.5, Deployments: []string{"factoid"},
	})
	wave, err := eng.StreamN(2000, 200)
	if err != nil {
		t.Fatal(err)
	}
	slice := hottestTag(t, wave)
	if err := d.SetSlices([]sliceql.SliceDef{{Name: slice, Expr: slice}}); err != nil {
		t.Fatal(err)
	}

	// Fast loop, full gate battery: agreement over mirrored comparisons,
	// the shed-rate promote hold, and a fail-closed slice gate that
	// demands comparison evidence on the hottest slice.
	err = d.StartLoop(deploy.LoopConfig{
		Interval:        2 * time.Millisecond,
		MinRetrainBatch: 24,
		Policy: deploy.Policy{
			MinMirrored:           6,
			MinAgreement:          0.5,
			Hysteresis:            2,
			RollbackWindow:        2,
			MinRegressionRequests: 1 << 30,
			MaxPromoteShedRate:    0.95,
			SliceGates:            []deploy.SliceGate{{Slice: slice, MinAgreement: 0.3, MinUnits: 1}},
		},
		FineTune: train.FineTuneConfig{Epochs: 1, LR: 0.001},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive seeded waves until the loop promotes. Every wave must
	// reconcile exactly with zero errors — the loop retrains and promotes
	// under traffic, never by failing it.
	tgt := traffic.NewHTTPTarget(ts.URL)
	var predictAdmitted, ingestAdmitted int64
	deadline := time.Now().Add(60 * time.Second)
	for d.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion: stats=%+v loop=%+v", d.Stats(), d.LoopStatus())
		}
		rep, err := traffic.DriveStream(context.Background(), eng, wave, tgt,
			traffic.DriveConfig{QPS: 2000, Workers: 8, Deadline: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errored != 0 {
			t.Fatalf("wave errored %d (first: %s)", rep.Errored, rep.FirstError)
		}
		predictAdmitted += rep.PerKind["predict"].Admitted
		ingestAdmitted += rep.PerKind["ingest"].Admitted
	}

	if predictAdmitted == 0 || ingestAdmitted == 0 {
		t.Fatalf("both lanes must flow: predict %d ingest %d", predictAdmitted, ingestAdmitted)
	}
	ls := d.LoopStatus()
	if ls.Retrains < 1 {
		t.Fatalf("promotion without retrain: %+v", ls)
	}
	if ls.Promotions < 1 {
		t.Fatalf("stats promoted but loop status disagrees: %+v", ls)
	}
	// The slice gate was part of the promote decision: its verdict is
	// recorded on the loop status every tick.
	if len(ls.Slices) != 1 || ls.Slices[0].Slice != slice {
		t.Fatalf("slice gate verdicts missing: %+v", ls.Slices)
	}
	// Promotion advanced the served version.
	if v := d.Stats().Version; v < 2 {
		t.Fatalf("served version %d after promotion, want >= 2", v)
	}
}
