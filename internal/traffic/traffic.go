// Package traffic is Overton's synthetic traffic engine: seeded,
// pluggable workload shapes that produce deterministic request streams,
// and a closed-loop driver that fires them at any HTTP front (a single
// `overton serve` process or the `overton route` cluster) with a worker
// pool, per-request deadlines, and exact accounting.
//
// Every number the fleet publishes — admission isolation, failover
// success rates, serve-plane latency — is only as credible as the
// traffic it was measured under. Uniform benchmark storms miss the
// failure modes real products hit: hot-key skew concentrating load on
// one deployment, bursts that outrun a token bucket's refill, diurnal
// ramps that hold a system at its knee, and mixed predict/ingest flows
// where the improvement loop retrains under the same pressure it
// serves. This package makes those shapes first-class and repeatable:
// the same (workload, seed, qps, duration) tuple always produces a
// byte-identical request stream, so "does the system survive scenario
// X" is a deterministic test, not an anecdote.
//
// The engine is exposed two ways: the `overton load` subcommand for
// operators (JSON report out, stamped into BENCH_train.json via
// cmd/benchjson), and the in-process harness API (NewEngine + Drive)
// that the scenario test suites use to drive a real registry / serve /
// cluster stack inside `go test -race`.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Shapes lists the named workload shapes New accepts, in documentation
// order.
func Shapes() []string {
	return []string{"uniform", "zipf-hotkey", "burst", "diurnal", "mixed"}
}

// Config selects and parameterises a workload shape. The zero value of
// every optional field means "use the default"; Workload and at least
// one deployment name are required.
type Config struct {
	// Workload names the shape: one of Shapes().
	Workload string `json:"workload"`
	// Seed drives every random choice — corpus generation, key
	// selection, kind mix, deployment spread. Identical configs with
	// identical seeds produce byte-identical request streams.
	Seed int64 `json:"seed"`
	// Keyspace is the number of distinct request payloads in the corpus
	// (default 256). Key k always maps to the same payload bytes.
	Keyspace int `json:"keyspace,omitempty"`
	// Deployments are the target deployment names. One engine can spray
	// a fleet; scenario tests usually pin a single name per engine so
	// accounting cross-checks stay per-deployment exact.
	Deployments []string `json:"deployments"`
	// Mix is the ingest fraction of the stream in [0,1): each request
	// is an ingest line with probability Mix, a predict otherwise
	// (default 0; the mixed shape defaults to 0.2).
	Mix float64 `json:"mix,omitempty"`
	// Skew is the zipf s-parameter for zipf-hotkey and mixed key
	// selection (default 1.2; must be > 1).
	Skew float64 `json:"skew,omitempty"`
	// RateHigh / RateLow bound the rate multiplier for the burst and
	// diurnal shapes (defaults 4.0 / 0.25). A burst square wave
	// alternates between them; a diurnal ramp sweeps between them.
	RateHigh float64 `json:"rate_high,omitempty"`
	RateLow  float64 `json:"rate_low,omitempty"`
	// Period is the burst wave period as a fraction of the run
	// (default 0.25 — four full waves per run).
	Period float64 `json:"period,omitempty"`
	// Duty is the high fraction of each burst period (default 0.5, a
	// square wave; small values make spike waves).
	Duty float64 `json:"duty,omitempty"`
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Keyspace <= 0 {
		c.Keyspace = 256
	}
	if c.Skew <= 1 {
		c.Skew = 1.2
	}
	if c.RateHigh <= 0 {
		c.RateHigh = 4.0
	}
	if c.RateLow <= 0 {
		c.RateLow = 0.25
	}
	if c.Period <= 0 || c.Period > 1 {
		c.Period = 0.25
	}
	if c.Duty <= 0 || c.Duty >= 1 {
		c.Duty = 0.5
	}
	if c.Mix == 0 && c.Workload == "mixed" {
		c.Mix = 0.2
	}
	return c
}

// validate rejects configs New cannot honour.
func (c Config) validate() error {
	found := false
	for _, s := range Shapes() {
		if s == c.Workload {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("traffic: unknown workload %q (want one of %s)",
			c.Workload, strings.Join(Shapes(), "|"))
	}
	if len(c.Deployments) == 0 {
		return fmt.Errorf("traffic: config needs at least one deployment name")
	}
	for _, d := range c.Deployments {
		if d == "" {
			return fmt.Errorf("traffic: empty deployment name")
		}
	}
	if c.Mix < 0 || c.Mix >= 1 {
		return fmt.Errorf("traffic: mix %g out of [0,1)", c.Mix)
	}
	return nil
}

// Spec is one generated request slot before payload attachment: which
// corpus key, which kind, which deployment.
type Spec struct {
	// Key indexes the payload corpus; the same key always carries the
	// same bytes, so key skew is payload skew.
	Key int
	// Ingest selects the ingest lane (one labeled JSONL line) instead
	// of a predict call.
	Ingest bool
	// Dep indexes Config.Deployments.
	Dep int
}

// Workload is a pluggable traffic shape: a deterministic sequence of
// request specs plus an instantaneous rate profile. Implementations
// must derive every random choice from the rng they are handed — the
// engine seeds it and calls Next strictly sequentially, which is what
// makes streams reproducible.
type Workload interface {
	// Name returns the shape's registry name (one of Shapes()).
	Name() string
	// Describe returns a one-line human description of the shape.
	Describe() string
	// Rate returns the rate multiplier at run fraction x in [0,1); the
	// driver multiplies the base QPS by it when pacing the stream.
	Rate(x float64) float64
	// Next produces the i'th request spec, consuming rng sequentially.
	Next(i int, rng *rand.Rand) Spec
}

// shape is the shared Workload implementation behind every named shape.
type shape struct {
	name string
	desc string
	rate func(x float64) float64
	// key picks a corpus key; nil means uniform.
	key  func(rng *rand.Rand) int
	mix  float64
	deps int
	keys int
}

func (s *shape) Name() string     { return s.name }
func (s *shape) Describe() string { return s.desc }

func (s *shape) Rate(x float64) float64 {
	if s.rate == nil {
		return 1
	}
	return s.rate(x)
}

func (s *shape) Next(i int, rng *rand.Rand) Spec {
	// Draw order is fixed (key, kind, deployment) so every shape
	// consumes the rng identically and streams stay reproducible.
	var sp Spec
	if s.key != nil {
		sp.Key = s.key(rng)
	} else {
		sp.Key = rng.Intn(s.keys)
	}
	if s.mix > 0 && rng.Float64() < s.mix {
		sp.Ingest = true
	}
	if s.deps > 1 {
		sp.Dep = rng.Intn(s.deps)
	}
	return sp
}

// New builds the named workload shape from cfg. The returned Workload
// is stateless between runs except for the rng the engine threads
// through it.
func New(cfg Config) (Workload, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &shape{
		name: cfg.Workload,
		mix:  cfg.Mix,
		deps: len(cfg.Deployments),
		keys: cfg.Keyspace,
	}
	burstRate := func(x float64) float64 {
		// Square wave: the first Duty fraction of every period runs at
		// RateHigh, the rest at RateLow.
		_, frac := math.Modf(x / cfg.Period)
		if frac < cfg.Duty {
			return cfg.RateHigh
		}
		return cfg.RateLow
	}
	switch cfg.Workload {
	case "uniform":
		s.desc = "uniform keys at a constant rate"
	case "zipf-hotkey":
		s.desc = fmt.Sprintf("zipf(s=%.2f) hot-key skew at a constant rate", cfg.Skew)
		s.key = zipfKeys(cfg)
	case "burst":
		s.desc = fmt.Sprintf("square wave: x%.2g for %.0f%% of each period, x%.2g after",
			cfg.RateHigh, 100*cfg.Duty, cfg.RateLow)
		s.rate = burstRate
	case "diurnal":
		s.desc = fmt.Sprintf("raised-cosine ramp between x%.2g and x%.2g over the run",
			cfg.RateLow, cfg.RateHigh)
		s.rate = func(x float64) float64 {
			// Trough at the run's edges, peak mid-run — one synthetic day.
			return cfg.RateLow + (cfg.RateHigh-cfg.RateLow)*0.5*(1-math.Cos(2*math.Pi*x))
		}
	case "mixed":
		s.desc = fmt.Sprintf("zipf(s=%.2f) keys, %.0f%% ingest / %.0f%% predict",
			cfg.Skew, 100*cfg.Mix, 100*(1-cfg.Mix))
		s.key = zipfKeys(cfg)
	}
	return s, nil
}

// zipfKeys returns a zipf-skewed key picker: key 0 is the hottest. The
// rand.Zipf generator is allocated lazily on first draw so it binds to
// the engine's sequential rng.
func zipfKeys(cfg Config) func(rng *rand.Rand) int {
	var z *rand.Zipf
	return func(rng *rand.Rand) int {
		if z == nil {
			z = rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Keyspace-1))
		}
		return int(z.Uint64())
	}
}

// HotKeyShare computes the traffic share of the hottest-k keys in a
// stream — the skew measurement scenario tests pin.
func HotKeyShare(reqs []Request, k int) float64 {
	if len(reqs) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, r := range reqs {
		counts[r.Key]++
	}
	all := make([]int, 0, len(counts))
	for _, n := range counts {
		all = append(all, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	hot := 0
	for i := 0; i < k && i < len(all); i++ {
		hot += all[i]
	}
	return float64(hot) / float64(len(reqs))
}

// Request is one fully materialised request in a deterministic stream.
type Request struct {
	// Seq is the request's position in the stream.
	Seq int
	// Deployment is the target deployment name.
	Deployment string
	// Ingest selects POST .../ingest (Body is one JSONL line) instead
	// of POST .../predict (Body is a predict request).
	Ingest bool
	// Key is the corpus key the body was drawn from.
	Key int
	// Body is the exact wire payload.
	Body []byte
	// At is the scheduled send offset from the run start.
	At time.Duration
}
