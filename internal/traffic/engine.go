package traffic

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/record"
	"repro/internal/workload"
)

// maxStreamLen bounds a single materialised stream so a mistyped
// qps/duration pair fails loudly instead of exhausting memory.
const maxStreamLen = 2_000_000

// Engine materialises deterministic request streams for one workload
// config: a payload corpus keyed 0..Keyspace-1 built once from the
// seed, and a schedule shaped by the workload's rate profile. The same
// config always yields byte-identical streams.
type Engine struct {
	cfg    Config
	wl     Workload
	corpus *corpus
}

// corpus holds the pre-rendered wire bodies per key. Predict bodies
// carry the record's slice/tag annotations as request tags so generated
// traffic is sliceable by construction; ingest lines carry the weak
// supervision battery (gold stripped — live traffic has no gold).
type corpus struct {
	predict [][]byte
	ingest  [][]byte
}

// wireRequest mirrors the serve front's predict request shape.
type wireRequest struct {
	Payloads map[string]json.RawMessage `json:"payloads"`
	Tags     []string                   `json:"tags,omitempty"`
}

// NewEngine validates cfg, builds the payload corpus, and returns an
// engine ready to stream.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	wl, err := New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := buildCorpus(cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, wl: wl, corpus: c}, nil
}

// Config returns the engine's (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Workload returns the engine's shape.
func (e *Engine) Workload() Workload { return e.wl }

// buildCorpus renders Keyspace distinct (predict body, ingest line)
// pairs from the factoid generator. Generation, source labeling, and
// JSON rendering are all seeded and map-key-sorted, so the bytes are a
// pure function of the config.
func buildCorpus(cfg Config) (*corpus, error) {
	examples := workload.Generate(workload.GenConfig{Seed: cfg.Seed, N: cfg.Keyspace})
	sch := workload.FactoidSchema()
	recs := make([]*record.Record, len(examples))
	for i, ex := range examples {
		recs[i] = ex.ToRecord(fmt.Sprintf("k%06d", i))
	}
	// The weak-source battery labels the ingest lane (live ingest feeds
	// the improvement loop's label model); rng is seeded so labels are
	// part of the deterministic stream contract.
	workload.ApplySources(examples, recs, workload.DefaultSources(0.3), rand.New(rand.NewSource(cfg.Seed+1)))
	c := &corpus{
		predict: make([][]byte, len(recs)),
		ingest:  make([][]byte, len(recs)),
	}
	for i, rec := range recs {
		// Predict body: payloads only, with the record's slice and tag
		// annotations as request tags (telemetry slices key off them).
		line, err := record.MarshalRecord(rec, sch)
		if err != nil {
			return nil, fmt.Errorf("traffic: render key %d: %w", i, err)
		}
		var rj struct {
			Payloads map[string]json.RawMessage `json:"payloads"`
		}
		if err := json.Unmarshal(line, &rj); err != nil {
			return nil, fmt.Errorf("traffic: reparse key %d: %w", i, err)
		}
		var tags []string
		seen := map[string]bool{}
		for _, t := range append(append([]string{}, rec.Slices...), rec.Tags...) {
			if !seen[t] {
				seen[t] = true
				tags = append(tags, t)
			}
		}
		body, err := json.Marshal(wireRequest{Payloads: rj.Payloads, Tags: tags})
		if err != nil {
			return nil, fmt.Errorf("traffic: render predict key %d: %w", i, err)
		}
		c.predict[i] = body

		// Ingest line: the full record minus gold — production ingest
		// carries weak votes, never curated labels.
		for task, sources := range rec.Tasks {
			delete(sources, record.GoldSource)
			if len(sources) == 0 {
				delete(rec.Tasks, task)
			}
		}
		iline, err := record.MarshalRecord(rec, sch)
		if err != nil {
			return nil, fmt.Errorf("traffic: render ingest key %d: %w", i, err)
		}
		c.ingest[i] = iline
	}
	return c, nil
}

// Stream materialises the deterministic request stream for a run: base
// qps shaped by the workload's rate profile over duration. Request i
// fires at the accumulated schedule offset; the stream ends when the
// schedule crosses duration.
func (e *Engine) Stream(qps float64, duration time.Duration) ([]Request, error) {
	return e.stream(qps, duration, 0)
}

// StreamN materialises exactly n requests paced at base qps, with the
// rate profile swept over the n requests (run fraction x = i/n). Used
// by fixed-count tests and `overton load -requests`.
func (e *Engine) StreamN(qps float64, n int) ([]Request, error) {
	return e.stream(qps, 0, n)
}

func (e *Engine) stream(qps float64, duration time.Duration, n int) ([]Request, error) {
	if qps <= 0 {
		return nil, fmt.Errorf("traffic: qps %g must be > 0", qps)
	}
	if n <= 0 && duration <= 0 {
		return nil, fmt.Errorf("traffic: stream needs a duration or a request count")
	}
	if n > maxStreamLen || (duration > 0 && qps*duration.Seconds() > maxStreamLen) {
		return nil, fmt.Errorf("traffic: stream of ~%.0f requests exceeds the %d cap",
			qps*duration.Seconds(), maxStreamLen)
	}
	// The stream rng is offset from the corpus seeds so corpus and
	// schedule stay independently reproducible.
	rng := rand.New(rand.NewSource(e.cfg.Seed + 2))
	secs := duration.Seconds()
	var out []Request
	t := 0.0
	for i := 0; ; i++ {
		var x float64
		if n > 0 {
			if i >= n {
				break
			}
			x = float64(i) / float64(n)
		} else {
			if t >= secs {
				break
			}
			x = t / secs
		}
		if len(out) >= maxStreamLen {
			return nil, fmt.Errorf("traffic: stream exceeds the %d-request cap", maxStreamLen)
		}
		sp := e.wl.Next(i, rng)
		req := Request{
			Seq:        i,
			Deployment: e.cfg.Deployments[sp.Dep],
			Ingest:     sp.Ingest,
			Key:        sp.Key,
			At:         time.Duration(t * float64(time.Second)),
		}
		if sp.Ingest {
			req.Body = e.corpus.ingest[sp.Key]
		} else {
			req.Body = e.corpus.predict[sp.Key]
		}
		out = append(out, req)
		rate := e.wl.Rate(x)
		if rate <= 0 {
			rate = 1e-3
		}
		t += 1 / (qps * rate)
	}
	return out, nil
}
