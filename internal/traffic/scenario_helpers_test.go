package traffic_test

// Shared fixtures for the end-to-end scenario suite: the tests in
// scenario_*_test.go drive real serve / cluster stacks with the traffic
// engine and pin admission isolation, closed-loop promotion, and
// failover accounting under -race.

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/workload"
)

// freshModel builds a small trained-enough factoid model, mirroring the
// serve and cluster test fixtures: hash embeddings + BOW keep scenario
// runs fast while exercising the full predict path.
func freshModel(t testing.TB, seed int64) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
