package traffic_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// newReplica starts one real in-process replica (full serve stack).
func newReplica(t *testing.T, seed int64) (*serve.Server, *httptest.Server) {
	t.Helper()
	sv := serve.New(freshModel(t, seed), "factoid", 1)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() { ts.Close(); sv.Close() })
	return sv, ts
}

// waitHealthy blocks until every replica passes its readiness probes.
func waitHealthy(t *testing.T, rt *cluster.Router, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, rs := range rt.Stats().Replicas {
			if rs.Healthy {
				healthy++
			}
		}
		if healthy == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d replicas healthy: %+v", healthy, n, rt.Stats().Replicas)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScenarioClusterFailoverAccounting drives a routed two-replica
// stack with a seeded burst workload and kills one replica's network
// mid-run via the cluster.dial failpoint. The router must fail over
// invisibly — the client sees zero sheds and zero errors — and the
// accounting must reconcile across all three ledgers: the client
// report, the router's routed/shed counters, and the replicas' own
// admission counters. Run under -race in CI.
func TestScenarioClusterFailoverAccounting(t *testing.T) {
	sv1, r1 := newReplica(t, 1)
	sv2, r2 := newReplica(t, 7)

	rt, err := cluster.New(cluster.Options{
		Replicas:         []string{r1.URL, r2.URL},
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		RequestTimeout:   3 * time.Second,
		RetryBase:        time.Millisecond,
		RetryMax:         5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	waitHealthy(t, rt, 2)

	// Rendezvous routing is sticky per deployment: find the replica that
	// actually carries "factoid" with a short warm-up, then baseline
	// every ledger so the measured run asserts on deltas only.
	eng := mustEngine(t, traffic.Config{Workload: "burst", Seed: 42, Deployments: []string{"factoid"}})
	tgt := traffic.NewHTTPTarget(front.URL)
	warm, err := eng.StreamN(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, wr := range warm {
		if out := tgt.Do(context.Background(), wr); out.Class != traffic.Admitted {
			t.Fatalf("warm-up request failed: %+v", out)
		}
	}
	base := rt.Stats()
	preferred := ""
	for _, rs := range base.Replicas {
		if rs.Requests > 0 {
			preferred = strings.TrimPrefix(rs.URL, "http://")
		}
	}
	if preferred == "" {
		t.Fatalf("warm-up reached no replica: %+v", base.Replicas)
	}
	baseLoad := map[*serve.Server]int64{}
	for _, sv := range []*serve.Server{sv1, sv2} {
		d, ok := sv.Registry().Get("factoid")
		if !ok {
			t.Fatal("replica missing factoid deployment")
		}
		baseLoad[sv] = d.Load().Admitted
	}

	// Mid-run, the preferred replica's network goes away for a fault
	// window: every dial fails with a connection-refused shape. The probe
	// plane shares the transport, so health checking sees the same outage
	// and routing must fail over to the survivor.
	faultDone := make(chan struct{})
	t.Cleanup(faultinject.Disable)
	go func() {
		defer close(faultDone)
		time.Sleep(300 * time.Millisecond)
		faultinject.Enable(faultinject.NewRegistry().ArmEvery(
			"cluster.dial."+preferred,
			faultinject.Fault{Kind: faultinject.KindError, Err: errors.New("connect: connection refused")},
		))
		time.Sleep(500 * time.Millisecond)
		faultinject.Disable()
	}()

	rep, err := traffic.Drive(context.Background(), eng, tgt,
		traffic.DriveConfig{QPS: 300, Requests: 300, Workers: 8, Deadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	<-faultDone

	// The outage is invisible to the client: retries absorb every dial
	// failure, nothing is shed, nothing errors.
	if rep.Offered != 300 || rep.Admitted != 300 || rep.Shed != 0 || rep.Errored != 0 {
		t.Fatalf("failover leaked to the client: offered %d admitted %d shed %d errored %d first=%s",
			rep.Offered, rep.Admitted, rep.Shed, rep.Errored, rep.FirstError)
	}

	// Router ledger: one routed entry per client request, no shed path
	// taken, and the fault window actually forced retries and failures.
	cs := rt.Stats()
	if got := cs.Routed - base.Routed; got != rep.Offered {
		t.Fatalf("router routed %d != client offered %d", got, rep.Offered)
	}
	if cs.Shed != 0 {
		t.Fatalf("router shed %d, want 0", cs.Shed)
	}
	var totalFailures, totalRetries int64
	for _, rs := range cs.Replicas {
		totalFailures += rs.Failures
		totalRetries += rs.Retries
	}
	if totalFailures == 0 || totalRetries == 0 {
		t.Fatalf("fault window never bit: failures %d retries %d (%+v)", totalFailures, totalRetries, cs.Replicas)
	}

	// Replica ledger: dial faults never reach a replica, so the sum of
	// replica-side admitted requests is exactly the client's admitted
	// count — every request was served exactly once.
	var delivered int64
	for _, sv := range []*serve.Server{sv1, sv2} {
		d, ok := sv.Registry().Get("factoid")
		if !ok {
			t.Fatal("replica missing factoid deployment")
		}
		load := d.Load()
		if load.Shed != 0 {
			t.Fatalf("replica shed %d, want 0", load.Shed)
		}
		delivered += load.Admitted - baseLoad[sv]
	}
	if delivered != rep.Admitted {
		t.Fatalf("replica-side admitted %d != client admitted %d", delivered, rep.Admitted)
	}
}
