package traffic_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/record"
	"repro/internal/traffic"
	"repro/internal/workload"
)

func cfg(name string, seed int64) traffic.Config {
	return traffic.Config{Workload: name, Seed: seed, Deployments: []string{"factoid"}}
}

func mustEngine(t testing.TB, c traffic.Config) *traffic.Engine {
	t.Helper()
	e, err := traffic.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustStream(t testing.TB, e *traffic.Engine, qps float64, d time.Duration) []traffic.Request {
	t.Helper()
	s, err := e.Stream(qps, d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// flatten renders a stream to bytes: schedule offsets, routing, and
// payload bytes — the full determinism surface.
func flatten(reqs []traffic.Request) []byte {
	var buf bytes.Buffer
	for _, r := range reqs {
		fmt.Fprintf(&buf, "%d %s ingest=%v key=%d at=%d\n", r.Seq, r.Deployment, r.Ingest, r.Key, r.At)
		buf.Write(r.Body)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestStreamsAreByteIdentical pins the acceptance criterion: the same
// (workload, seed, qps, duration) produces byte-identical request
// streams across independent engines, for every shape.
func TestStreamsAreByteIdentical(t *testing.T) {
	for _, name := range traffic.Shapes() {
		t.Run(name, func(t *testing.T) {
			a := flatten(mustStream(t, mustEngine(t, cfg(name, 42)), 200, time.Second))
			b := flatten(mustStream(t, mustEngine(t, cfg(name, 42)), 200, time.Second))
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different streams (%d vs %d bytes)", len(a), len(b))
			}
			c := flatten(mustStream(t, mustEngine(t, cfg(name, 43)), 200, time.Second))
			if bytes.Equal(a, c) {
				t.Fatalf("different seeds produced identical streams")
			}
		})
	}
}

// TestStreamNIsDeterministicToo covers the fixed-count form the
// scenario suites use.
func TestStreamNIsDeterministicToo(t *testing.T) {
	e1, e2 := mustEngine(t, cfg("zipf-hotkey", 7)), mustEngine(t, cfg("zipf-hotkey", 7))
	a, err := e1.StreamN(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.StreamN(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("StreamN lengths %d/%d, want 500", len(a), len(b))
	}
	if !bytes.Equal(flatten(a), flatten(b)) {
		t.Fatal("StreamN not deterministic")
	}
}

// TestZipfSkewConcentratesKeys asserts hot-key shapes are actually
// skewed and uniform is not: the hottest 8 of 256 keys must carry the
// majority of zipf traffic and nowhere near it under uniform.
func TestZipfSkewConcentratesKeys(t *testing.T) {
	zipf := mustStream(t, mustEngine(t, cfg("zipf-hotkey", 1)), 2000, time.Second)
	uni := mustStream(t, mustEngine(t, cfg("uniform", 1)), 2000, time.Second)
	zs, us := traffic.HotKeyShare(zipf, 8), traffic.HotKeyShare(uni, 8)
	if zs < 0.5 {
		t.Fatalf("zipf hottest-8 share %.3f, want >= 0.5", zs)
	}
	if us > 0.2 {
		t.Fatalf("uniform hottest-8 share %.3f, want <= 0.2", us)
	}
}

// TestBurstShapesSchedule asserts the burst square wave shows up in the
// schedule: the high-duty phase packs more requests per unit time than
// the low phase.
func TestBurstShapesSchedule(t *testing.T) {
	c := cfg("burst", 5)
	c.Period = 0.5 // two waves over the run
	c.Duty = 0.5
	stream := mustStream(t, mustEngine(t, c), 400, time.Second)
	var firstQuarter, secondQuarter int
	for _, r := range stream {
		switch {
		case r.At < 250*time.Millisecond:
			firstQuarter++
		case r.At < 500*time.Millisecond:
			secondQuarter++
		}
	}
	// RateHigh/RateLow default 4.0/0.25: a 16x instantaneous ratio.
	if firstQuarter < 4*secondQuarter {
		t.Fatalf("burst high phase %d vs low phase %d requests — wave not visible", firstQuarter, secondQuarter)
	}
}

// TestDiurnalRampPeaksMidRun asserts the diurnal shape concentrates
// traffic mid-run.
func TestDiurnalRampPeaksMidRun(t *testing.T) {
	stream := mustStream(t, mustEngine(t, cfg("diurnal", 5)), 400, time.Second)
	var edges, middle int
	for _, r := range stream {
		if r.At < 200*time.Millisecond || r.At >= 800*time.Millisecond {
			edges++
		} else if r.At >= 400*time.Millisecond && r.At < 600*time.Millisecond {
			middle++
		}
	}
	if middle <= edges {
		t.Fatalf("diurnal middle fifth %d <= edge fifths %d — no ramp", middle, edges)
	}
}

// TestMixedRatioHoldsAndBodiesDiffer asserts the mixed shape honours
// its ingest fraction and that the two lanes carry different wire
// bodies (ingest lines have supervision, predicts don't).
func TestMixedRatioHoldsAndBodiesDiffer(t *testing.T) {
	c := cfg("mixed", 3)
	c.Mix = 0.3
	stream := mustStream(t, mustEngine(t, c), 2000, time.Second)
	var ingest int
	for _, r := range stream {
		if r.Ingest {
			ingest++
			var line struct {
				Tasks map[string]map[string]json.RawMessage `json:"tasks"`
			}
			if err := json.Unmarshal(r.Body, &line); err != nil {
				t.Fatalf("ingest line %d not JSON: %v", r.Seq, err)
			}
			for task, sources := range line.Tasks {
				if _, ok := sources[record.GoldSource]; ok {
					t.Fatalf("ingest line %d leaks gold labels on task %s", r.Seq, task)
				}
			}
		}
	}
	got := float64(ingest) / float64(len(stream))
	if got < 0.2 || got > 0.4 {
		t.Fatalf("ingest fraction %.3f, want ~0.3", got)
	}
}

// TestCorpusBodiesValidateAgainstSchema decodes every corpus predict
// body exactly like the serve front would and validates it, so a
// schema drift fails here before any scenario runs.
func TestCorpusBodiesValidateAgainstSchema(t *testing.T) {
	c := cfg("uniform", 11)
	c.Keyspace = 64
	stream := mustStream(t, mustEngine(t, c), 300, time.Second)
	sch := workload.FactoidSchema()
	seen := map[int]bool{}
	for _, r := range stream {
		if seen[r.Key] || r.Ingest {
			continue
		}
		seen[r.Key] = true
		var wire struct {
			Payloads map[string]json.RawMessage `json:"payloads"`
		}
		if err := json.Unmarshal(r.Body, &wire); err != nil {
			t.Fatalf("key %d: bad body: %v", r.Key, err)
		}
		rec, err := record.ParsePayloads(wire.Payloads, sch)
		if err != nil {
			t.Fatalf("key %d: %v", r.Key, err)
		}
		if err := record.Validate(rec, sch); err != nil {
			t.Fatalf("key %d: %v", r.Key, err)
		}
	}
	if len(seen) < 32 {
		t.Fatalf("stream covered only %d/64 keys", len(seen))
	}
}

// TestDriveAccountingReconciles drives a scripted target that admits,
// sheds, and errors in a fixed pattern and asserts the report's exact
// accounting identity at every level.
func TestDriveAccountingReconciles(t *testing.T) {
	e := mustEngine(t, traffic.Config{
		Workload: "mixed", Seed: 9, Mix: 0.25,
		Deployments: []string{"a", "b"},
	})
	var n int64
	tgt := traffic.TargetFunc(func(ctx context.Context, req traffic.Request) traffic.Outcome {
		n++
		switch n % 5 {
		case 0:
			return traffic.Classify(429)
		case 1:
			return traffic.Outcome{Class: traffic.Errored, Err: context.DeadlineExceeded}
		default:
			return traffic.Classify(200)
		}
	})
	rep, err := traffic.Drive(context.Background(), e, tgt, traffic.DriveConfig{
		QPS: 5000, Requests: 500, Workers: 1, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != 500 {
		t.Fatalf("offered %d, want 500", rep.Offered)
	}
	if rep.Shed != 100 || rep.Errored != 100 || rep.Admitted != 300 {
		t.Fatalf("admitted/shed/errored %d/%d/%d, want 300/100/100", rep.Admitted, rep.Shed, rep.Errored)
	}
	if rep.DeadlineExceeded != 100 {
		t.Fatalf("deadline-exceeded %d, want 100", rep.DeadlineExceeded)
	}
	if err := rep.Reconciles(); err != nil {
		t.Fatal(err)
	}
	if got := rep.PerKind["predict"].Offered + rep.PerKind["ingest"].Offered; got != 500 {
		t.Fatalf("per-kind offered sums to %d", got)
	}
	if got := rep.PerDeployment["a"].Offered + rep.PerDeployment["b"].Offered; got != 500 {
		t.Fatalf("per-deployment offered sums to %d", got)
	}
	if rep.PerDeployment["a"].Offered == 0 || rep.PerDeployment["b"].Offered == 0 {
		t.Fatal("multi-deployment spread left a deployment idle")
	}
}

// TestDriveCancelStopsOffering cancels mid-run and asserts unfired
// requests are not counted as offered — the report reconciles early.
func TestDriveCancelStopsOffering(t *testing.T) {
	e := mustEngine(t, cfg("uniform", 2))
	ctx, cancel := context.WithCancel(context.Background())
	var n int64
	tgt := traffic.TargetFunc(func(context.Context, traffic.Request) traffic.Outcome {
		n++
		if n == 50 {
			cancel()
		}
		return traffic.Classify(200)
	})
	rep, err := traffic.Drive(ctx, e, tgt, traffic.DriveConfig{QPS: 100000, Requests: 100000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered >= 100000 || rep.Offered < 50 {
		t.Fatalf("offered %d after cancel at 50", rep.Offered)
	}
	if err := rep.Reconciles(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation pins the error paths operators hit first.
func TestConfigValidation(t *testing.T) {
	if _, err := traffic.NewEngine(traffic.Config{Workload: "nope", Deployments: []string{"d"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := traffic.NewEngine(traffic.Config{Workload: "uniform"}); err == nil {
		t.Fatal("empty deployment list accepted")
	}
	e := mustEngine(t, cfg("uniform", 1))
	if _, err := e.Stream(0, time.Second); err == nil {
		t.Fatal("zero qps accepted")
	}
	if _, err := e.Stream(1e9, time.Hour); err == nil {
		t.Fatal("absurd stream size accepted")
	}
	if _, err := e.Stream(100, 0); err == nil {
		t.Fatal("no duration and no count accepted")
	}
}
