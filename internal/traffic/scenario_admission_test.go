package traffic_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// TestScenarioAdmissionIsolation is the admission-isolation acceptance
// scenario: two deployments share one serve front; a rate-limited "hot"
// deployment takes a seeded burst storm while an unlimited "healthy"
// neighbour takes zipf hot-key traffic. The storming neighbour must
// shed — and only it: the healthy deployment serves 100% of its offered
// load, and both client reports reconcile exactly against the
// server-side admission counters. Run under -race in CI.
func TestScenarioAdmissionIsolation(t *testing.T) {
	reg := deploy.NewRegistry()
	hot := deploy.New("hot", freshModel(t, 1), 1)
	healthy := deploy.New("healthy", freshModel(t, 7), 1)
	for _, d := range []*deploy.Deployment{hot, healthy} {
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	// Tight limits on hot: a 400-qps burst storm against a 50-qps bucket
	// must shed most of its offered load.
	if err := hot.SetLimits(deploy.Limits{QPS: 50, Burst: 10, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	front := serve.NewFleet(reg)
	defer front.Close()
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	// Mix stays 0 on both engines so every client-side request is a
	// predict and maps one-to-one onto a server-side admission attempt.
	stormEng := mustEngine(t, traffic.Config{Workload: "burst", Seed: 42, Deployments: []string{"hot"}})
	calmEng := mustEngine(t, traffic.Config{Workload: "zipf-hotkey", Seed: 7, Deployments: []string{"healthy"}})

	var wg sync.WaitGroup
	var stormRep, calmRep traffic.Report
	var stormErr, calmErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		stormRep, stormErr = traffic.Drive(context.Background(), stormEng, traffic.NewHTTPTarget(ts.URL),
			traffic.DriveConfig{QPS: 400, Requests: 300, Workers: 8, Deadline: 10 * time.Second})
	}()
	go func() {
		defer wg.Done()
		calmRep, calmErr = traffic.Drive(context.Background(), calmEng, traffic.NewHTTPTarget(ts.URL),
			traffic.DriveConfig{QPS: 100, Requests: 150, Workers: 4, Deadline: 10 * time.Second})
	}()
	wg.Wait()
	if stormErr != nil {
		t.Fatalf("storm drive: %v", stormErr)
	}
	if calmErr != nil {
		t.Fatalf("calm drive: %v", calmErr)
	}

	// The healthy neighbour is untouched by the storm: every offered
	// request admitted, nothing shed, nothing errored.
	if calmRep.Offered != 150 || calmRep.Admitted != 150 || calmRep.Shed != 0 || calmRep.Errored != 0 {
		t.Fatalf("healthy deployment not isolated: offered %d admitted %d shed %d errored %d",
			calmRep.Offered, calmRep.Admitted, calmRep.Shed, calmRep.Errored)
	}
	// The storm overran its token bucket: real shedding, no errors —
	// sheds are clean 429s, not failures.
	if stormRep.Offered != 300 || stormRep.Shed == 0 || stormRep.Errored != 0 {
		t.Fatalf("storm not shed cleanly: offered %d admitted %d shed %d errored %d first=%s",
			stormRep.Offered, stormRep.Admitted, stormRep.Shed, stormRep.Errored, stormRep.FirstError)
	}

	// Exact cross-check: the client-side report and the server-side
	// admission counters must agree request-for-request, per deployment.
	hotLoad, healthyLoad := hot.Load(), healthy.Load()
	if hotLoad.Admitted != stormRep.Admitted || hotLoad.Shed != stormRep.Shed || hotLoad.Offered() != stormRep.Offered {
		t.Fatalf("hot: server admitted/shed/offered %d/%d/%d != client %d/%d/%d",
			hotLoad.Admitted, hotLoad.Shed, hotLoad.Offered(),
			stormRep.Admitted, stormRep.Shed, stormRep.Offered)
	}
	if healthyLoad.Admitted != calmRep.Admitted || healthyLoad.Shed != 0 || healthyLoad.Offered() != calmRep.Offered {
		t.Fatalf("healthy: server admitted/shed/offered %d/%d/%d != client %d/%d/%d",
			healthyLoad.Admitted, healthyLoad.Shed, healthyLoad.Offered(),
			calmRep.Admitted, calmRep.Shed, calmRep.Offered)
	}

	// Per-deployment lanes carry the whole run (single-deployment engines).
	if l := stormRep.PerDeployment["hot"]; l == nil || l.Offered != stormRep.Offered {
		t.Fatalf("storm per-deployment lane %+v", l)
	}
	if l := calmRep.PerDeployment["healthy"]; l == nil || l.Offered != calmRep.Offered {
		t.Fatalf("calm per-deployment lane %+v", l)
	}
}
