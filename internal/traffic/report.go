package traffic

import (
	"fmt"
	"io"
)

// LaneCounts is the per-lane accounting quadruple. Every fired request
// lands in exactly one of the three outcome columns, so
// Offered == Admitted + Shed + Errored must hold per lane.
type LaneCounts struct {
	// Offered counts requests fired at the target.
	Offered int64 `json:"offered"`
	// Admitted counts 2xx responses.
	Admitted int64 `json:"admitted"`
	// Shed counts 429/503 refusals (admission limits, quarantine,
	// drain, router shed).
	Shed int64 `json:"shed"`
	// Errored counts everything else: transport failures, deadline
	// misses, unexpected statuses.
	Errored int64 `json:"errored"`
}

// reconciles checks the lane's accounting identity.
func (l LaneCounts) reconciles() bool {
	return l.Offered == l.Admitted+l.Shed+l.Errored
}

// Percentiles summarises admitted-request latency in milliseconds
// (ceil nearest-rank, the fleet's percentile convention).
type Percentiles struct {
	// P50/P90/P95/P99 are nearest-rank percentiles in milliseconds.
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	// Max is the slowest admitted request.
	Max float64 `json:"max_ms"`
	// Mean is the arithmetic mean.
	Mean float64 `json:"mean_ms"`
}

// Report is one run's exact accounting plus latency capture — the JSON
// artifact `overton load` emits and cmd/benchjson stamps into
// BENCH_train.json.
type Report struct {
	// Workload / Seed identify the deterministic stream that was fired.
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// Target is the base URL the run drove (filled by `overton load`).
	Target string `json:"target,omitempty"`
	// BaseQPS / Workers echo the drive configuration.
	BaseQPS float64 `json:"base_qps"`
	Workers int     `json:"workers"`
	// Requested is the materialised stream length; Offered can be lower
	// when the run is cancelled early.
	Requested int `json:"requested"`
	// Offered/Admitted/Shed/Errored are the run totals; the identity
	// Offered == Admitted + Shed + Errored is enforced, not assumed.
	Offered  int64 `json:"offered"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Errored  int64 `json:"errored"`
	// DeadlineExceeded is the errored subset that hit the per-request
	// deadline.
	DeadlineExceeded int64 `json:"deadline_exceeded,omitempty"`
	// FirstError preserves the first transport-level error for
	// diagnosis.
	FirstError string `json:"first_error,omitempty"`
	// Status is the HTTP status histogram ("200": n, "429": m, ...).
	Status map[string]int64 `json:"status"`
	// PerDeployment / PerKind break the totals down by target
	// deployment and by predict/ingest lane.
	PerDeployment map[string]*LaneCounts `json:"per_deployment"`
	PerKind       map[string]*LaneCounts `json:"per_kind"`
	// DurationSeconds / AchievedQPS report the wall clock actually
	// spent and the offered rate actually achieved (a saturated closed
	// loop achieves less than it was asked for).
	DurationSeconds float64 `json:"duration_seconds"`
	AchievedQPS     float64 `json:"achieved_qps"`
	// Latency summarises admitted requests only — shed and errored
	// requests answer fast and would flatter the tail.
	Latency Percentiles `json:"latency"`
}

// Reconciles verifies the exact-accounting contract on the totals and
// every per-deployment and per-kind lane. It returns nil when every
// identity holds.
func (r Report) Reconciles() error {
	total := LaneCounts{Offered: r.Offered, Admitted: r.Admitted, Shed: r.Shed, Errored: r.Errored}
	if !total.reconciles() {
		return fmt.Errorf("traffic: totals do not reconcile: offered %d != admitted %d + shed %d + errored %d",
			r.Offered, r.Admitted, r.Shed, r.Errored)
	}
	var perDep, perKind LaneCounts
	for name, l := range r.PerDeployment {
		if !l.reconciles() {
			return fmt.Errorf("traffic: deployment %s does not reconcile: %+v", name, *l)
		}
		perDep.Offered += l.Offered
		perDep.Admitted += l.Admitted
		perDep.Shed += l.Shed
		perDep.Errored += l.Errored
	}
	if perDep != total {
		return fmt.Errorf("traffic: per-deployment sums %+v != totals %+v", perDep, total)
	}
	for kind, l := range r.PerKind {
		if !l.reconciles() {
			return fmt.Errorf("traffic: kind %s does not reconcile: %+v", kind, *l)
		}
		perKind.Offered += l.Offered
		perKind.Admitted += l.Admitted
		perKind.Shed += l.Shed
		perKind.Errored += l.Errored
	}
	if perKind != total {
		return fmt.Errorf("traffic: per-kind sums %+v != totals %+v", perKind, total)
	}
	return nil
}

// ShedRate is the shed fraction of offered load.
func (r Report) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// BenchMetrics renders the report as benchmark metrics for
// cmd/benchjson (`benchjson -load report.json`), alongside the
// `go test -bench` rows in BENCH_train.json.
func (r Report) BenchMetrics() map[string]float64 {
	return map[string]float64{
		"req/s":     r.AchievedQPS,
		"p50-ms":    r.Latency.P50,
		"p95-ms":    r.Latency.P95,
		"p99-ms":    r.Latency.P99,
		"offered":   float64(r.Offered),
		"admitted":  float64(r.Admitted),
		"shed":      float64(r.Shed),
		"errored":   float64(r.Errored),
		"shed-rate": r.ShedRate(),
	}
}

// Summarize writes a short human-readable run summary.
func (r Report) Summarize(w io.Writer) {
	fmt.Fprintf(w, "workload %s seed %d: offered %d = admitted %d + shed %d + errored %d (%.1f req/s over %.2fs)\n",
		r.Workload, r.Seed, r.Offered, r.Admitted, r.Shed, r.Errored, r.AchievedQPS, r.DurationSeconds)
	fmt.Fprintf(w, "latency ms (admitted): p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
}
