package traffic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class is the driver's request outcome classification. Every fired
// request lands in exactly one class, which is what makes the report's
// offered == admitted + shed + errored identity exact.
type Class int

// The three outcome classes.
const (
	// Admitted: the request was served (2xx).
	Admitted Class = iota
	// Shed: load was refused by design — 429 (admission limits) or 503
	// (quarantine, drain, or the router's no-healthy-replica shed).
	Shed
	// Errored: anything else — transport failures, deadlines, 4xx/5xx.
	Errored
)

// Outcome is one request's classified result.
type Outcome struct {
	// Class is the accounting lane the request landed in.
	Class Class
	// Status is the HTTP status when a response arrived (0 otherwise).
	Status int
	// Err holds the transport/deadline error for non-HTTP failures.
	Err error
}

// Target fires one generated request at a system under test. The HTTP
// implementation covers `overton serve` and `overton route`;
// TargetFunc adapts anything else (direct registry calls, fault
// proxies) for in-process harnesses.
type Target interface {
	// Do fires req and classifies the result. ctx carries the
	// per-request deadline.
	Do(ctx context.Context, req Request) Outcome
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(ctx context.Context, req Request) Outcome

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, req Request) Outcome { return f(ctx, req) }

// HTTPTarget drives the fleet's HTTP surface: predicts go to
// POST {base}/v1/models/{dep}/predict, ingest lines to .../ingest.
type HTTPTarget struct {
	// Base is the front's base URL (no trailing slash needed).
	Base string
	// Client is the HTTP client; nil uses a dedicated pooled client.
	Client *http.Client
}

// NewHTTPTarget returns a target over base with a connection-pooled
// client sized for driver concurrency.
func NewHTTPTarget(base string) *HTTPTarget {
	return &HTTPTarget{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}},
	}
}

// Do implements Target: one POST, fully drained, classified.
func (t *HTTPTarget) Do(ctx context.Context, req Request) Outcome {
	path := "/v1/models/" + req.Deployment + "/predict"
	if req.Ingest {
		path = "/v1/models/" + req.Deployment + "/ingest"
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(t.Base, "/")+path, bytes.NewReader(req.Body))
	if err != nil {
		return Outcome{Class: Errored, Err: err}
	}
	hr.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hr)
	if err != nil {
		return Outcome{Class: Errored, Err: err}
	}
	// Drain so the connection is reusable; the body content is not part
	// of the accounting contract.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Classify(resp.StatusCode)
}

// Classify maps an HTTP status to its accounting class: 2xx admitted,
// 429/503 shed (admission limits, quarantine, drain, router shed),
// everything else errored.
func Classify(status int) Outcome {
	o := Outcome{Status: status}
	switch {
	case status >= 200 && status < 300:
		o.Class = Admitted
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		o.Class = Shed
	default:
		o.Class = Errored
	}
	return o
}

// DriveConfig bounds one closed-loop run.
type DriveConfig struct {
	// QPS is the base offered rate the workload's rate profile
	// multiplies (required).
	QPS float64
	// Duration shapes the stream length when Requests is zero.
	Duration time.Duration
	// Requests, when > 0, fires exactly this many requests instead of a
	// duration-shaped stream.
	Requests int
	// Workers is the closed-loop worker-pool size (default 8). When all
	// workers are busy the pacer blocks — offered load degrades instead
	// of queueing unboundedly, like a real client pool.
	Workers int
	// Deadline is the per-request timeout (default 5s). A deadline miss
	// counts as errored.
	Deadline time.Duration
}

func (c DriveConfig) withDefaults() DriveConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Second
	}
	return c
}

// Drive materialises the engine's stream and fires it at tgt from a
// closed-loop worker pool, pacing sends to the stream's schedule.
// Cancelling ctx stops the run early: unfired requests are simply not
// offered, so the report still reconciles exactly. The returned report
// is always reconciled (it errors otherwise).
func Drive(ctx context.Context, e *Engine, tgt Target, cfg DriveConfig) (Report, error) {
	cfg = cfg.withDefaults()
	var stream []Request
	var err error
	if cfg.Requests > 0 {
		stream, err = e.StreamN(cfg.QPS, cfg.Requests)
	} else {
		stream, err = e.Stream(cfg.QPS, cfg.Duration)
	}
	if err != nil {
		return Report{}, err
	}
	return DriveStream(ctx, e, stream, tgt, cfg)
}

// DriveStream fires an already-materialised stream (from Stream or
// StreamN) at tgt. Exposed so harnesses can inspect or replay the exact
// stream they drive.
func DriveStream(ctx context.Context, e *Engine, stream []Request, tgt Target, cfg DriveConfig) (Report, error) {
	cfg = cfg.withDefaults()
	type slot struct {
		outcome   Outcome
		latencyMs float64
		fired     bool
		ingest    bool
		dep       string
	}
	slots := make([]slot, len(stream))

	feed := make(chan int) // indices into stream; unbuffered = closed loop
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				req := stream[i]
				rctx, cancel := context.WithTimeout(ctx, cfg.Deadline)
				t0 := time.Now()
				out := tgt.Do(rctx, req)
				cancel()
				slots[i] = slot{
					outcome:   out,
					latencyMs: float64(time.Since(t0)) / float64(time.Millisecond),
					fired:     true,
					ingest:    req.Ingest,
					dep:       req.Deployment,
				}
			}
		}()
	}

	start := time.Now()
pace:
	for i, req := range stream {
		// Hold to the schedule; a busy pool blocks the send below
		// instead (closed loop).
		if wait := req.At - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break pace
			}
		}
		select {
		case feed <- i:
		case <-ctx.Done():
			break pace
		}
	}
	close(feed)
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Workload:  e.wl.Name(),
		Seed:      e.cfg.Seed,
		BaseQPS:   cfg.QPS,
		Workers:   cfg.Workers,
		Requested: len(stream),
		Status:    map[string]int64{},
		PerDeployment: func() map[string]*LaneCounts {
			m := map[string]*LaneCounts{}
			for _, d := range e.cfg.Deployments {
				m[d] = &LaneCounts{}
			}
			return m
		}(),
		PerKind:         map[string]*LaneCounts{"predict": {}, "ingest": {}},
		DurationSeconds: elapsed.Seconds(),
	}
	var latencies []float64
	for i := range slots {
		s := &slots[i]
		if !s.fired {
			continue
		}
		rep.Offered++
		kind := "predict"
		if s.ingest {
			kind = "ingest"
		}
		lanes := []*LaneCounts{rep.PerDeployment[s.dep], rep.PerKind[kind]}
		for _, l := range lanes {
			l.Offered++
		}
		if s.outcome.Status != 0 {
			rep.Status[fmt.Sprintf("%d", s.outcome.Status)]++
		}
		switch s.outcome.Class {
		case Admitted:
			rep.Admitted++
			latencies = append(latencies, s.latencyMs)
			for _, l := range lanes {
				l.Admitted++
			}
		case Shed:
			rep.Shed++
			for _, l := range lanes {
				l.Shed++
			}
		case Errored:
			rep.Errored++
			if s.outcome.Err != nil && errors.Is(s.outcome.Err, context.DeadlineExceeded) {
				rep.DeadlineExceeded++
			}
			if rep.FirstError == "" && s.outcome.Err != nil {
				rep.FirstError = s.outcome.Err.Error()
			}
			for _, l := range lanes {
				l.Errored++
			}
		}
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(rep.Offered) / elapsed.Seconds()
	}
	rep.Latency = computePercentiles(latencies)
	if err := rep.Reconciles(); err != nil {
		return rep, err
	}
	return rep, nil
}

// computePercentiles summarises admitted-request latencies with
// ceil-nearest-rank percentiles (the fleet's percentile convention).
func computePercentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64{}, ms...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		// Ceil nearest-rank: the smallest value with at least p of the
		// sample at or below it.
		i := int(p*float64(len(sorted))+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Percentiles{
		P50:  rank(0.50),
		P90:  rank(0.90),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}
