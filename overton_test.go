package overton

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

const fastTuning = `{
  "embeddings": ["hash-16"], "encoders": ["CNN"], "hidden": [16],
  "query_agg": ["mean"], "entity_agg": ["mean"],
  "lr": [0.02], "epochs": [4], "dropout": [0], "batch_size": [32]
}`

func fastApp(t *testing.T) *App {
	t.Helper()
	app, err := Open([]byte(workload.SchemaJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.SetTuning([]byte(fastTuning)); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestOpenRejectsBadSchema(t *testing.T) {
	if _, err := Open([]byte(`{"payloads": {}}`)); err == nil {
		t.Fatalf("bad schema accepted")
	}
	if _, err := OpenFile("/does/not/exist.json"); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestSetTuningValidates(t *testing.T) {
	app := fastApp(t)
	if err := app.SetTuning([]byte(`{"encoders": ["FancyTransformer"]}`)); err == nil {
		t.Fatalf("bad tuning accepted")
	}
}

func TestLoadDataRoundTrip(t *testing.T) {
	app := fastApp(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "d.jsonl")
	ds := workload.StandardDataset(50, 1, 0.2)
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := app.LoadData(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != 50 {
		t.Fatalf("records lost: %d", len(loaded.Records))
	}
}

func TestBuildPredictSaveLoad(t *testing.T) {
	app := fastApp(t)
	ds := workload.StandardDataset(150, 2, 0.2)
	m, rep, err := app.Build(ds, BuildOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DevScore <= 0 || rep.Program == "" {
		t.Fatalf("build report incomplete: %+v", rep)
	}
	if len(rep.SourceAccuracy["Intent"]) == 0 {
		t.Fatalf("no source diagnostics")
	}
	// Predict on test records.
	test := ds.WithTag(TagTest)
	outs, err := m.Predict(test[:3])
	if err != nil {
		t.Fatal(err)
	}
	if outs[0]["Intent"].Class == "" {
		t.Fatalf("no prediction")
	}
	// Save/Load through the façade.
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	outs2, err := m2.Predict(test[:3])
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i]["Intent"].Class != outs2[i]["Intent"].Class {
			t.Fatalf("reloaded model drifts")
		}
	}
}

func TestBuildWithSearch(t *testing.T) {
	app := fastApp(t)
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-16"], "encoders": ["BOW", "CNN"], "hidden": [16],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [3], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		t.Fatal(err)
	}
	ds := workload.StandardDataset(120, 5, 0.2)
	_, rep, err := app.Build(ds, BuildOptions{Seed: 7, SearchBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != 2 {
		t.Fatalf("trials: %d", len(rep.Trials))
	}
}

func TestResourceDerivationPretrained(t *testing.T) {
	// The façade must auto-pretrain static vectors / BERT-sim from the
	// data file when the tuning space requests those families.
	app := fastApp(t)
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["bertsim-8"], "encoders": ["BOW"], "hidden": [8],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [2], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		t.Fatal(err)
	}
	ds := workload.StandardDataset(80, 9, 0.2)
	m, _, err := app.Build(ds, BuildOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// bertsim models round-trip through the codec registered in init().
	path := filepath.Join(t.TempDir(), "bert.bin")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatal(err)
	}
}

func TestReportAndCompare(t *testing.T) {
	app := fastApp(t)
	ds := workload.StandardDataset(150, 13, 0.2)
	m, _, err := app.Build(ds, BuildOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := app.Report(m, ds, ReportOptions{Name: "r1", EvalTag: TagTest})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Overall) != 4 {
		t.Fatalf("overall wrong")
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "Intent") {
		t.Fatalf("render wrong")
	}
	cmp := Compare(rep, rep, 0.01)
	if len(cmp.Regressions) != 0 {
		t.Fatalf("self-compare found regressions")
	}
	q := MeanQuality(rep.Overall)
	if q <= 0 || q > 1 || math.IsNaN(q) {
		t.Fatalf("MeanQuality out of range: %g", q)
	}
}

func TestBuildDeterministic(t *testing.T) {
	run := func() float64 {
		app := fastApp(t)
		ds := workload.StandardDataset(100, 19, 0.2)
		_, rep, err := app.Build(ds, BuildOptions{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		return rep.DevScore
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("Build not deterministic: %v vs %v", a, b)
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
