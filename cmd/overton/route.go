package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/deploy"
	"repro/internal/telemetry"
)

// cmdRoute runs the cluster routing front: a health-checked,
// retry/failover proxy over N `overton serve` replica processes, with
// rolling gated promotes across the fleet.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "router listen address")
	var replicas []string
	fs.Func("replica", "replica base URL, e.g. http://127.0.0.1:8081 (repeatable; at least one required)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	probeInterval := fs.Duration("probe-interval", 0, "replica /readyz probe period (0 = default 500ms)")
	probeTimeout := fs.Duration("probe-timeout", 0, "one probe round trip budget (0 = default 1s)")
	rise := fs.Int("rise", 0, "consecutive probe successes to re-admit a replica (0 = default 2)")
	fall := fs.Int("fall", 0, "consecutive probe failures to eject a replica (0 = default 2)")
	requestTimeout := fs.Duration("request-timeout", 0, "proxied request deadline, retries included (0 = default 10s)")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "single-attempt deadline against one replica (0 = request deadline only)")
	retries := fs.Int("retries", 0, "max retries after the first attempt; retryable failures only (0 = default 2, negative = none)")
	retryBase := fs.Duration("retry-base", 0, "base retry backoff, doubled per attempt with jitter (0 = default 25ms)")
	retryMax := fs.Duration("retry-max", 0, "retry backoff cap (0 = default 1s)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a replica's circuit breaker (0 = default 5)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "initial breaker open interval, doubled per failed trial (0 = default 2s)")
	promoteHold := fs.Duration("promote-hold", 0, "hold between rolling-promote steps before the gates are judged (0 = default 2s)")
	maxErrRate := fs.Float64("max-regression-error-rate", 0, "promote gate: roll back when a stepped replica's post-promote error rate exceeds this (0 = off)")
	minRegReq := fs.Int64("min-regression-requests", 0, "promote gate: requests required in the hold window before the error-rate gate judges (0 = default 1)")
	maxShedRate := fs.Float64("max-promote-shed-rate", 0, "promote gate: roll back when a stepped replica's shed rate exceeds this (0 = off)")
	var sliceGates []string
	fs.Func("slice-gate", "promote gate slice=min-agreement (repeatable), judged fail-closed against each stepped replica's live slice report", func(v string) error {
		sliceGates = append(sliceGates, v)
		return nil
	})
	telemetryDir := fs.String("telemetry-dir", "", "telemetry JSONL directory for the route stream (empty = off)")
	telemetryMaxAge := fs.Duration("telemetry-max-age", 0, "drop rotated telemetry segments older than this (0 = keep by count only)")
	telemetryCompress := fs.Bool("telemetry-compress", false, "gzip rotated telemetry segments; queries decompress transparently")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight proxied requests")
	fs.Parse(args)
	if len(replicas) == 0 {
		return fmt.Errorf("route needs at least one -replica URL")
	}

	policy := deploy.Policy{
		MaxRegressionErrorRate: *maxErrRate,
		MinRegressionRequests:  *minRegReq,
		MaxPromoteShedRate:     *maxShedRate,
	}
	for _, spec := range sliceGates {
		name, minAgree, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-slice-gate %q: %w", spec, err)
		}
		min, err := parseFloat(minAgree)
		if err != nil || min <= 0 || min > 1 {
			return fmt.Errorf("-slice-gate %q: want slice=min-agreement in (0,1]", spec)
		}
		policy.SliceGates = append(policy.SliceGates, deploy.SliceGate{Slice: name, MinAgreement: min})
	}

	var tel *telemetry.Logger
	if *telemetryDir != "" {
		l, err := telemetry.New(*telemetryDir, telemetry.Options{
			MaxAge:   *telemetryMaxAge,
			Compress: *telemetryCompress,
		})
		if err != nil {
			return fmt.Errorf("-telemetry-dir %s: %w", *telemetryDir, err)
		}
		tel = l
		defer tel.Close()
		fmt.Printf("telemetry  %s (route stream)\n", *telemetryDir)
	}

	maxRetries := *retries
	if maxRetries < 0 {
		maxRetries = -1 // Options maps negatives to "no retries"
	}
	rt, err := cluster.New(cluster.Options{
		Replicas:         replicas,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		Rise:             *rise,
		Fall:             *fall,
		RequestTimeout:   *requestTimeout,
		AttemptTimeout:   *attemptTimeout,
		MaxRetries:       maxRetries,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		PromoteHold:      *promoteHold,
		Policy:           policy,
		Telemetry:        tel,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	healthy := 0
	for _, rep := range rt.Replicas() {
		state := "unhealthy"
		if rep.Healthy() {
			state = "healthy"
			healthy++
		}
		fmt.Printf("replica    %-40s %s\n", rep.URL(), state)
	}
	fmt.Printf("routing %d replica(s) on %s (%d healthy at start)\n", len(replicas), *addr, healthy)
	fmt.Printf("  POST /v1/models/{name}/predict|ingest|shadow  (proxied with retry/failover)\n")
	fmt.Printf("  POST /v1/models/{name}/promote|rollback       (rolling, gated, fleet-wide)\n")
	fmt.Printf("  GET  /v1/cluster/stats  GET /stats  GET /readyz\n")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "shutdown: draining in-flight proxied requests (timeout %s)\n", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: drain timeout exceeded, closing listener: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "shutdown: complete")
	return nil
}

func parseFloat(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	return f, err
}
