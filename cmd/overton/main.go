// Command overton is the CLI over the Overton lifecycle: compile a schema,
// generate a synthetic workload, build (train+tune) a deployable model,
// evaluate and monitor it, answer ad-hoc queries, publish to the artifact
// store, serve over HTTP, and load-test the serving plane with seeded
// synthetic traffic.
//
// Subcommands:
//
//	overton compile  -schema s.json [-slices a,b]
//	overton datagen  -n 2000 -seed 1 -crowd 0.2 -out data.jsonl
//	overton train    -schema s.json -data d.jsonl -out model.bin [-search 8] [-slices a,b] [-train-workers W]
//	overton eval     -model model.bin -data d.jsonl [-tag test]
//	overton report   -model model.bin -data d.jsonl [-csv] [-json]
//	overton predict  -model model.bin -in query.json
//	overton serve    -model model.bin -addr :8080
//	overton serve    -deploy factoid=m1.bin -deploy qa=m2.bin -shadow factoid=cand.bin [-default factoid]
//	overton serve    -deploy factoid=m1.bin -auto-improve [-min-agreement 0.9] [-promote-after 64]
//	overton serve    -deploy factoid=m1.bin -limit factoid=200:50:128 [-max-inflight 256]
//	overton serve    -deploy factoid=m1.bin -state-dir state/ [-drain-timeout 10s]
//	overton serve    -deploy factoid=m1.bin -precision f32 [-precision qa=f64]
//	overton serve    -deploy factoid=m1.bin -state-dir state/ -slice 'hot=intent=billing AND age<1h'
//	overton route    -addr :8090 -replica http://127.0.0.1:8081 -replica http://127.0.0.1:8082
//	overton load     -target http://127.0.0.1:8080 -workload zipf-hotkey -seed 42 -qps 200 -duration 10s
//	overton query    -dir state/telemetry 'SELECT COUNT(*), P95(latency_ms) FROM predict SINCE 1h'
//	overton store    -root dir put|get|list -name m [-file model.bin] [-version N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	overton "repro"
	"repro/internal/artifact"
	"repro/internal/compile"
	"repro/internal/deploy"
	"repro/internal/fleetstate"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/serve"
	"repro/internal/sliceql"
	"repro/internal/telemetry"
	"repro/internal/train"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(args)
	case "datagen":
		err = cmdDatagen(args)
	case "train":
		err = cmdTrain(args)
	case "eval":
		err = cmdEval(args)
	case "report":
		err = cmdReport(args)
	case "predict":
		err = cmdPredict(args)
	case "serve":
		err = cmdServe(args)
	case "route":
		err = cmdRoute(args)
	case "load":
		err = cmdLoad(args)
	case "query":
		err = cmdQuery(args)
	case "store":
		err = cmdStore(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "overton %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: overton <compile|datagen|train|eval|report|predict|serve|route|load|query|store> [flags]")
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON path")
	slices := fs.String("slices", "", "comma-separated slice names")
	fs.Parse(args)
	app, err := overton.OpenFile(*schemaPath)
	if err != nil {
		return err
	}
	prog, err := compile.Plan(app.Schema, app.Tuning.Default(), splitList(*slices))
	if err != nil {
		return err
	}
	fmt.Print(prog.Describe())
	sig, err := json.MarshalIndent(app.Schema.Signature(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("serving signature:\n%s\n", sig)
	return nil
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	n := fs.Int("n", 2000, "number of examples")
	seed := fs.Int64("seed", 1, "generator seed")
	crowd := fs.Float64("crowd", 0.2, "simulated annotator coverage")
	out := fs.String("out", "data.jsonl", "output JSONL path")
	schemaOut := fs.String("schema-out", "", "also write the factoid schema here")
	fs.Parse(args)
	ds := workload.StandardDataset(*n, *seed, *crowd)
	if err := ds.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s (weak supervision %.1f%%)\n",
		len(ds.Records), *out, 100*workload.WeakFraction(ds))
	if *schemaOut != "" {
		if err := os.WriteFile(*schemaOut, []byte(workload.SchemaJSON), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote schema to %s\n", *schemaOut)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema JSON path")
	dataPath := fs.String("data", "", "data JSONL path")
	tuningPath := fs.String("tuning", "", "tuning-spec JSON path (optional)")
	out := fs.String("out", "model.bin", "output artifact path")
	searchN := fs.Int("search", 1, "search budget (1 = default choice)")
	halving := fs.Bool("halving", false, "successive halving search")
	slices := fs.String("slices", "", "comma-separated slice names to give capacity")
	seed := fs.Int64("seed", 1, "seed")
	rebalance := fs.Bool("rebalance", false, "class rebalancing")
	trainWorkers := fs.Int("train-workers", 0, "data-parallel training workers per step (0 = min(NumCPU, batch), 1 = serial)")
	precision := fs.String("precision", "", "serving precision baked into the artifact: f64 (default) or f32")
	fs.Parse(args)
	app, err := overton.OpenFile(*schemaPath)
	if err != nil {
		return err
	}
	if *tuningPath != "" {
		data, err := os.ReadFile(*tuningPath)
		if err != nil {
			return err
		}
		if err := app.SetTuning(data); err != nil {
			return err
		}
	}
	app.Slices = splitList(*slices)
	ds, err := app.LoadData(*dataPath)
	if err != nil {
		return err
	}
	m, rep, err := app.Build(ds, overton.BuildOptions{
		Seed:         *seed,
		SearchBudget: *searchN,
		Halving:      *halving,
		Rebalance:    *rebalance,
		TrainWorkers: *trainWorkers,
		Precision:    *precision,
		Log:          os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Program)
	fmt.Printf("dev score %.4f  (choice: %s)\n", rep.DevScore, rep.Choice)
	if err := m.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote artifact to %s\n", *out)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "", "model artifact path")
	dataPath := fs.String("data", "", "data JSONL path")
	tag := fs.String("tag", record.TagTest, "evaluate records with this tag (empty = all)")
	fs.Parse(args)
	m, err := overton.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	ds, err := record.Load(*dataPath, m.Prog.Schema)
	if err != nil {
		return err
	}
	recs := ds.Records
	if *tag != "" {
		recs = ds.WithTag(*tag)
	}
	ms, err := overton.Evaluate(m, recs)
	if err != nil {
		return err
	}
	for _, task := range sortedTasks(ms) {
		fmt.Println(ms[task].String())
	}
	fmt.Printf("mean quality %.4f (error %.4f)\n", overton.MeanQuality(ms), 1-overton.MeanQuality(ms))
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	modelPath := fs.String("model", "", "model artifact path")
	dataPath := fs.String("data", "", "data JSONL path")
	evalTag := fs.String("tag", record.TagTest, "evaluation population tag")
	asCSV := fs.Bool("csv", false, "emit CSV")
	asJSON := fs.Bool("json", false, "emit JSON")
	fs.Parse(args)
	m, err := overton.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	app := &overton.App{Schema: m.Prog.Schema}
	ds, err := record.Load(*dataPath, m.Prog.Schema)
	if err != nil {
		return err
	}
	rep, err := app.Report(m, ds, overton.ReportOptions{Name: *modelPath, EvalTag: *evalTag})
	if err != nil {
		return err
	}
	switch {
	case *asCSV:
		return rep.WriteCSV(os.Stdout)
	case *asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	default:
		rep.Render(os.Stdout)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "", "model artifact path")
	in := fs.String("in", "", "JSON file with {\"payloads\": ...} (default stdin)")
	fs.Parse(args)
	m, err := overton.LoadModel(*modelPath)
	if err != nil {
		return err
	}
	var data []byte
	if *in == "" {
		data, err = readAllStdin()
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	rec, err := record.ParseRecord(data, m.Prog.Schema)
	if err != nil {
		return err
	}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		return err
	}
	out, err := m.PredictOne(rec)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "", "model artifact path (single-model shorthand for one -deploy)")
	addr := fs.String("addr", ":8080", "listen address")
	defName := fs.String("default", "", "deployment backing the legacy /predict endpoint (default: first added)")
	batch := fs.Int("batch", 0, "micro-batch size per deployment (0 = default)")
	autoImprove := fs.Bool("auto-improve", false, "run the continuous-improvement loop on every deployment: drain streamed ingest into an incremental label model, fine-tune shadow candidates, auto-promote on the policy gates")
	loopInterval := fs.Duration("loop-interval", 0, "improvement-loop tick period (0 = default 500ms)")
	retrainBatch := fs.Int("retrain-batch", 0, "drained records required before fine-tuning a candidate (0 = default)")
	promoteAfter := fs.Int64("promote-after", 0, "mirrored comparisons required before the promote gate evaluates (0 = default)")
	minAgreement := fs.Float64("min-agreement", 0, "minimum per-task shadow agreement to promote (0 = default)")
	hysteresis := fs.Int("hysteresis", 0, "consecutive passing gate evaluations required to promote (0 = default)")
	rollbackWindow := fs.Int("rollback-window", 0, "post-promote ticks watched for regression (0 = default)")
	ftEpochs := fs.Int("ft-epochs", 0, "fine-tune epochs per candidate (0 = default 1)")
	ftLR := fs.Float64("ft-lr", 0, "fine-tune learning rate (0 = the model's tuning choice)")
	trainWorkers := fs.Int("train-workers", 0, "data-parallel workers per fine-tune step (0 = min(NumCPU, batch), 1 = serial)")
	maxInflight := fs.Int("max-inflight", 0, "registry-wide cap on concurrent in-flight predicts across all deployments (0 = unlimited); excess requests are shed with 429")
	stateDir := fs.String("state-dir", "", "durable state directory: journal every lifecycle change and ingest there, and recover the fleet from it on startup (empty = stateless)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests after SIGTERM/SIGINT before the listener is forced closed")
	telemetryDir := fs.String("telemetry-dir", "", "telemetry JSONL directory, queryable via POST /v1/query and `overton query` (default <state-dir>/telemetry when -state-dir is set; empty without -state-dir = telemetry off)")
	telemetryMaxAge := fs.Duration("telemetry-max-age", 0, "drop rotated telemetry segments older than this (0 = keep by count only)")
	telemetryCompress := fs.Bool("telemetry-compress", false, "gzip rotated telemetry segments; queries decompress transparently")
	var deploys, shadows, limits, precisions, sliceSpecs []string
	fs.Func("deploy", "name=artifact.bin deployment (repeatable; schemas may differ per deployment)", func(v string) error {
		deploys = append(deploys, v)
		return nil
	})
	fs.Func("shadow", "name=artifact.bin shadow candidate mirrored behind deployment name (repeatable)", func(v string) error {
		shadows = append(shadows, v)
		return nil
	})
	fs.Func("limit", "name=qps[:burst[:depth]] admission limits for deployment name (repeatable; 0 disables a field): token-bucket QPS + burst, max queued+executing predicts", func(v string) error {
		limits = append(limits, v)
		return nil
	})
	fs.Func("precision", "serving precision: f64|f32 for every deployment, or name=f32 per deployment (repeatable; overrides the artifact's saved precision)", func(v string) error {
		precisions = append(precisions, v)
		return nil
	})
	fs.Func("slice", "[dep:]name=PREDICATE declarative live slice (repeatable), e.g. 'hot=intent=billing AND age<1h'; without dep: the slice installs on every deployment; aggregates appear in /stats and can gate promotion", func(v string) error {
		sliceSpecs = append(sliceSpecs, v)
		return nil
	})
	fs.Parse(args)
	if *modelPath != "" {
		deploys = append([]string{*modelPath + "=" + *modelPath}, deploys...)
	}

	var opts []serve.Option
	if *batch > 0 {
		opts = append(opts, serve.WithBatchSize(*batch))
	}

	// With -state-dir, the registry is rebuilt from the journal before any
	// flags apply; recovered deployments win over -deploy specs of the same
	// name, and every later mutation is journaled back to the same dir.
	var reg *deploy.Registry
	var store *fleetstate.Store
	var recoveredLoops map[string]deploy.LoopConfig
	if *stateDir != "" {
		fleet, err := fleetstate.Recover(*stateDir, opts...)
		if err != nil {
			return fmt.Errorf("recover -state-dir %s: %w", *stateDir, err)
		}
		reg, store, recoveredLoops = fleet.Registry, fleet.Store, fleet.Loops
		for _, w := range fleet.Warnings {
			fmt.Fprintf(os.Stderr, "recovery warning: %s\n", w)
		}
		for _, d := range reg.All() {
			fmt.Printf("recovered  %-20s v%d (%d ingest records replayed)\n",
				d.Name(), d.Version(), fleet.Replayed[d.Name()])
		}
		if len(reg.Names()) > 0 && !fleet.CleanShutdown {
			fmt.Fprintf(os.Stderr, "recovery: previous run did not shut down cleanly; state rebuilt from journal %s\n", *stateDir)
		}
	} else {
		reg = deploy.NewRegistry()
	}
	if len(deploys) == 0 && len(reg.Names()) == 0 {
		return fmt.Errorf("serve needs -model, at least one -deploy name=artifact.bin, or a -state-dir with recovered deployments")
	}
	for _, spec := range deploys {
		name, path, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-deploy %q: %w", spec, err)
		}
		if _, ok := reg.Get(name); ok {
			fmt.Printf("deployment %-20s recovered from state dir; ignoring -deploy %s\n", name, path)
			continue
		}
		m, err := overton.LoadModel(path)
		if err != nil {
			return err
		}
		if err := reg.Add(deploy.New(name, m, 1, opts...)); err != nil {
			return err
		}
		fmt.Printf("deployment %-20s <- %s\n", name, path)
	}
	for _, spec := range shadows {
		name, path, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-shadow %q: %w", spec, err)
		}
		d, ok := reg.Get(name)
		if !ok {
			return fmt.Errorf("-shadow %q: no such deployment", name)
		}
		m, err := overton.LoadModel(path)
		if err != nil {
			return err
		}
		if err := d.SetShadow(m, d.Version()+1); err != nil {
			return err
		}
		fmt.Printf("shadow     %-20s <- %s (mirroring live traffic)\n", name, path)
	}
	for _, spec := range limits {
		name, lspec, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-limit %q: %w", spec, err)
		}
		d, ok := reg.Get(name)
		if !ok {
			return fmt.Errorf("-limit %q: no such deployment", name)
		}
		lim, err := parseLimitSpec(lspec)
		if err != nil {
			return fmt.Errorf("-limit %q: %w", spec, err)
		}
		if err := d.SetLimits(lim); err != nil {
			return fmt.Errorf("-limit %q: %w", spec, err)
		}
		fmt.Printf("limits     %-20s qps=%g burst=%d depth=%d\n",
			name, d.Limits().QPS, d.Limits().Burst, d.Limits().QueueDepth)
	}
	for _, spec := range precisions {
		name, pspec := "", spec
		if n, p, ok := strings.Cut(spec, "="); ok {
			name, pspec = n, p
		}
		prec, err := model.ParsePrecision(pspec)
		if err != nil {
			return fmt.Errorf("-precision %q: %w", spec, err)
		}
		targets := reg.All()
		if name != "" {
			d, ok := reg.Get(name)
			if !ok {
				return fmt.Errorf("-precision %q: no such deployment", spec)
			}
			targets = []*deploy.Deployment{d}
		}
		for _, d := range targets {
			if err := d.SetPrecision(prec); err != nil {
				return fmt.Errorf("-precision %q: %w", spec, err)
			}
			fmt.Printf("precision  %-20s %s serve plane\n", d.Name(), prec)
		}
	}
	telDir := *telemetryDir
	if telDir == "" && *stateDir != "" {
		telDir = filepath.Join(*stateDir, "telemetry")
	}
	var tel *telemetry.Logger
	if telDir != "" {
		l, err := telemetry.New(telDir, telemetry.Options{
			MaxAge:   *telemetryMaxAge,
			Compress: *telemetryCompress,
		})
		if err != nil {
			return fmt.Errorf("-telemetry-dir %s: %w", telDir, err)
		}
		tel = l
		reg.SetTelemetry(tel)
		fmt.Printf("telemetry  %s (JSONL streams: predict shadow admission lifecycle)\n", telDir)
	}
	if len(sliceSpecs) > 0 {
		perDep := map[string][]sliceql.SliceDef{}
		for _, spec := range sliceSpecs {
			left, expr, ok := strings.Cut(spec, "=")
			if !ok || left == "" || expr == "" {
				return fmt.Errorf("-slice %q: want [dep:]name=PREDICATE", spec)
			}
			depName, name := "", left
			if dn, n, ok := strings.Cut(left, ":"); ok {
				depName, name = dn, n
			}
			def := sliceql.SliceDef{Name: name, Expr: expr}
			if depName == "" {
				for _, d := range reg.All() {
					perDep[d.Name()] = append(perDep[d.Name()], def)
				}
				continue
			}
			if _, ok := reg.Get(depName); !ok {
				return fmt.Errorf("-slice %q: no such deployment", spec)
			}
			perDep[depName] = append(perDep[depName], def)
		}
		for name, defs := range perDep {
			d, _ := reg.Get(name)
			if err := d.SetSlices(defs); err != nil {
				return fmt.Errorf("-slice for %s: %w", name, err)
			}
			fmt.Printf("slices     %-20s %d live slice(s)\n", name, len(defs))
		}
	}
	if *maxInflight > 0 {
		reg.SetConcurrencyBudget(*maxInflight)
		fmt.Printf("budget     fleet-wide max in-flight predicts: %d\n", *maxInflight)
	}
	if *defName != "" {
		if err := reg.SetDefault(*defName); err != nil {
			return err
		}
	}
	if *autoImprove {
		loopCfg := deploy.LoopConfig{
			Interval:        *loopInterval,
			MinRetrainBatch: *retrainBatch,
			Policy: deploy.Policy{
				MinMirrored:    *promoteAfter,
				MinAgreement:   *minAgreement,
				Hysteresis:     *hysteresis,
				RollbackWindow: *rollbackWindow,
			},
			FineTune: train.FineTuneConfig{Epochs: *ftEpochs, LR: *ftLR, Workers: *trainWorkers},
		}
		for _, d := range reg.All() {
			if err := d.StartLoop(loopCfg); err != nil {
				return err
			}
			fmt.Printf("improving  %-20s (retrain from ingest, shadow, auto-promote)\n", d.Name())
		}
	} else {
		// Loops that were running when the previous process died restart
		// with their journaled config; -auto-improve above supersedes them.
		for name, cfg := range recoveredLoops {
			d, ok := reg.Get(name)
			if !ok {
				continue
			}
			if err := d.StartLoop(cfg); err != nil {
				return fmt.Errorf("restart recovered loop for %s: %w", name, err)
			}
			fmt.Printf("improving  %-20s (loop restarted from journaled config)\n", name)
		}
	}

	srv := serve.NewFleet(reg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("serving %d deployment(s) on %s (default %s)\n",
		len(reg.Names()), *addr, reg.Default().Name())
	fmt.Printf("  POST /v1/models/{name}/predict|ingest|promote|rollback|loop|slices\n")
	fmt.Printf("  GET  /v1/models[/{name}/stats|signature|loop|slices]  GET /readyz  POST /predict (legacy)\n")
	fmt.Printf("  POST /v1/query (sliceql)  GET /v1/telemetry\n")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		srv.Close()
		if tel != nil {
			tel.Close()
		}
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: stop admitting (readiness off), let in-flight
	// requests finish within the budget, then quiesce the fleet and mark
	// the journal clean. Buffered ingest stays in the WAL for the next run.
	fmt.Fprintf(os.Stderr, "shutdown: draining in-flight requests (timeout %s)\n", *drainTimeout)
	srv.SetReady(false)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown: drain timeout exceeded, closing listener: %v\n", err)
	}
	for _, d := range reg.All() {
		if _, buffered, _ := d.IngestStats(); buffered > 0 {
			fmt.Fprintf(os.Stderr, "shutdown: %s: %d ingest records durable in WAL for next start\n", d.Name(), buffered)
		}
	}
	reg.Close()
	if tel != nil {
		// Drain buffered telemetry and fsync the stream tails so the next
		// start reopens clean (no torn tail to truncate).
		tel.Close()
	}
	if store != nil {
		if err := store.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: checkpoint: %v\n", err)
		}
		store.Close()
	}
	fmt.Fprintln(os.Stderr, "shutdown: complete")
	return nil
}

// cmdQuery runs one sliceql statement offline against a telemetry
// directory — the same engine behind POST /v1/query, usable while the
// server is down or from a copied state dir.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "", "telemetry directory holding the JSONL streams")
	stateDir := fs.String("state-dir", "", "serve state directory (queries its telemetry/ subdirectory)")
	asJSON := fs.Bool("json", false, "emit the full result (columns, rows, scan counters) as JSON")
	fs.Parse(args)
	root := *dir
	if root == "" && *stateDir != "" {
		root = filepath.Join(*stateDir, "telemetry")
	}
	if root == "" {
		return fmt.Errorf("query needs -dir telemetry/ or -state-dir state/")
	}
	stmt := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if stmt == "" {
		return fmt.Errorf(`query needs a statement, e.g. 'SELECT COUNT(*), P95(latency_ms) FROM predict SINCE 1h'`)
	}
	res, err := sliceql.QueryDir(root, stmt, time.Now())
	if err != nil {
		return err
	}
	if *asJSON {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
		return nil
	}
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if v == nil {
				cells[i] = "-"
				continue
			}
			cells[i] = fmt.Sprintf("%v", v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Fprintf(os.Stderr, "-- %d row(s); scanned %d event(s) in %d file(s), %d matched",
		len(res.Rows), res.Scanned, res.Files, res.Matched)
	if res.Malformed > 0 {
		fmt.Fprintf(os.Stderr, ", %d malformed line(s) skipped", res.Malformed)
	}
	if res.Limited {
		fmt.Fprintf(os.Stderr, " (truncated by LIMIT)")
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// splitSpec parses a name=path flag value.
func splitSpec(spec string) (name, path string, err error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return "", "", fmt.Errorf("want name=artifact.bin")
	}
	return name, path, nil
}

// parseLimitSpec parses the qps[:burst[:depth]] part of a -limit flag.
func parseLimitSpec(spec string) (deploy.Limits, error) {
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return deploy.Limits{}, fmt.Errorf("want qps[:burst[:depth]], got %q", spec)
	}
	var lim deploy.Limits
	qps, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return deploy.Limits{}, fmt.Errorf("qps %q: %w", parts[0], err)
	}
	lim.QPS = qps
	if len(parts) > 1 {
		if lim.Burst, err = strconv.Atoi(parts[1]); err != nil {
			return deploy.Limits{}, fmt.Errorf("burst %q: %w", parts[1], err)
		}
	}
	if len(parts) > 2 {
		if lim.QueueDepth, err = strconv.Atoi(parts[2]); err != nil {
			return deploy.Limits{}, fmt.Errorf("depth %q: %w", parts[2], err)
		}
	}
	return lim, nil
}

func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	root := fs.String("root", "artifacts", "store root directory")
	name := fs.String("name", "", "model name")
	file := fs.String("file", "", "artifact file (for put/get)")
	version := fs.Int("version", 0, "version (0 = latest)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("store needs an action: put|get|list")
	}
	st, err := artifact.Open(*root)
	if err != nil {
		return err
	}
	switch rest[0] {
	case "put":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		vi, err := st.Put(*name, data, artifact.Metadata{"source": *file})
		if err != nil {
			return err
		}
		fmt.Printf("stored %s version %d (%s)\n", *name, vi.Version, vi.Digest[:12])
	case "get":
		data, vi, err := st.Get(*name, *version)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*file, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("fetched %s version %d -> %s\n", *name, vi.Version, *file)
	case "list":
		names, err := st.Models()
		if err != nil {
			return err
		}
		for _, n := range names {
			vs, err := st.Versions(n)
			if err != nil {
				return err
			}
			for _, v := range vs {
				fmt.Printf("%s\tv%d\t%s\n", n, v.Version, v.Digest[:12])
			}
		}
	default:
		return fmt.Errorf("unknown store action %q", rest[0])
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func sortedTasks(ms map[string]overton.TaskMetrics) []string {
	var names []string
	for n := range ms {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func readAllStdin() ([]byte, error) { return io.ReadAll(os.Stdin) }
