package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/traffic"
)

// repeatableFlag collects a repeated string flag (-deployment a -deployment b).
type repeatableFlag []string

func (r *repeatableFlag) String() string { return strings.Join(*r, ",") }

func (r *repeatableFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty value")
	}
	*r = append(*r, v)
	return nil
}

// cmdLoad runs the synthetic traffic engine against a live front
// (`overton serve` or `overton route`) and emits the exact-accounting
// JSON report, or with -dump prints the deterministic stream without
// firing it (for byte-identity checks: two dumps with the same flags
// must compare equal).
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the front to drive (required unless -dump)")
	workloadName := fs.String("workload", "uniform", "workload shape: "+strings.Join(traffic.Shapes(), "|"))
	seed := fs.Int64("seed", 1, "stream seed; same flags + same seed = byte-identical stream")
	qps := fs.Float64("qps", 100, "base offered rate (the shape's rate profile multiplies it)")
	duration := fs.Duration("duration", 10*time.Second, "run length (ignored when -requests is set)")
	requests := fs.Int("requests", 0, "fire exactly N requests instead of a timed run")
	workers := fs.Int("workers", 8, "closed-loop worker pool size")
	deadline := fs.Duration("deadline", 5*time.Second, "per-request deadline; a miss counts as errored")
	mix := fs.Float64("mix", 0, "ingest fraction in [0,1) (mixed shape defaults to 0.2)")
	keyspace := fs.Int("keyspace", 0, "distinct payload corpus size (default 256)")
	skew := fs.Float64("skew", 0, "zipf s-parameter for hot-key shapes (default 1.2)")
	var deployments repeatableFlag
	fs.Var(&deployments, "deployment", "target deployment name (repeatable; default factoid)")
	dump := fs.Int("dump", 0, "print the first N stream requests as JSONL and exit without firing")
	out := fs.String("out", "", "write the JSON report to this path (default stdout)")
	maxP99 := fs.Float64("max-p99", 0, "fail (exit 1) when admitted p99 latency exceeds this many ms")
	maxShedRate := fs.Float64("max-shed-rate", 0, "fail (exit 1) when shed/offered exceeds this fraction")
	fs.Parse(args)

	if len(deployments) == 0 {
		deployments = repeatableFlag{"factoid"}
	}
	cfg := traffic.Config{
		Workload:    *workloadName,
		Seed:        *seed,
		Keyspace:    *keyspace,
		Deployments: deployments,
		Mix:         *mix,
		Skew:        *skew,
	}
	eng, err := traffic.NewEngine(cfg)
	if err != nil {
		return err
	}

	if *dump > 0 {
		return dumpStream(eng, *qps, *dump)
	}
	if *target == "" {
		return fmt.Errorf("-target is required (or use -dump to print the stream)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "load: %s (%s) at %s, base %.0f qps\n",
		eng.Workload().Name(), eng.Workload().Describe(), *target, *qps)
	rep, err := traffic.Drive(ctx, eng, traffic.NewHTTPTarget(*target), traffic.DriveConfig{
		QPS:      *qps,
		Duration: *duration,
		Requests: *requests,
		Workers:  *workers,
		Deadline: *deadline,
	})
	if err != nil {
		return err
	}
	rep.Target = *target
	rep.Summarize(os.Stderr)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(blob)
	}

	if *maxP99 > 0 && rep.Latency.P99 > *maxP99 {
		return fmt.Errorf("admitted p99 %.2fms exceeds -max-p99 %.2fms", rep.Latency.P99, *maxP99)
	}
	if *maxShedRate > 0 && rep.ShedRate() > *maxShedRate {
		return fmt.Errorf("shed rate %.4f exceeds -max-shed-rate %.4f", rep.ShedRate(), *maxShedRate)
	}
	return nil
}

// dumpStream prints the first n requests of the deterministic stream as
// JSONL. Two invocations with identical flags must produce identical
// bytes — the CLI-level determinism check load_smoke.sh pins with cmp.
func dumpStream(eng *traffic.Engine, qps float64, n int) error {
	stream, err := eng.StreamN(qps, n)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	for _, r := range stream {
		line := struct {
			Seq        int             `json:"seq"`
			Deployment string          `json:"deployment"`
			Kind       string          `json:"kind"`
			Key        int             `json:"key"`
			AtMicros   int64           `json:"at_us"`
			Body       json.RawMessage `json:"body"`
		}{r.Seq, r.Deployment, "predict", r.Key, r.At.Microseconds(), json.RawMessage(r.Body)}
		if r.Ingest {
			line.Kind = "ingest"
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
