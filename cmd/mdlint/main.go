// Command mdlint checks markdown files for broken relative links — the
// offline half of the repo's docs lint (no network, so external URLs are
// not fetched). Every `[text](path)` whose path is relative must point
// at an existing file; anchors and schemes are skipped.
//
// Usage: mdlint README.md OPERATIONS.md PERFORMANCE.md
package main

import (
	"fmt"
	"os"

	"repro/internal/doclint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlint <file.md> [file.md...]")
		os.Exit(2)
	}
	var failed bool
	for _, path := range os.Args[1:] {
		problems, err := doclint.CheckMarkdown(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlint %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, p := range problems {
			failed = true
			fmt.Println(p)
		}
	}
	if failed {
		os.Exit(1)
	}
}
