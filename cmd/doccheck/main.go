// Command doccheck enforces godoc comments on a package's exported
// surface, in the spirit of revive's `exported` rule but with zero
// dependencies beyond the standard library (the CI container cannot
// install linters). For every listed package directory it requires:
//
//   - a package comment on the package clause (in at least one file);
//   - a doc comment on every exported top-level type, function, method
//     (with an exported receiver), and on every exported const/var —
//     either on the spec itself or on its enclosing declaration group.
//
// Test files are skipped. Exit status 1 lists every undocumented symbol
// as path:line: message, so the output is clickable in editors and CI.
//
// Usage: doccheck ./internal/deploy ./internal/serve ./internal/monitor
package main

import (
	"fmt"
	"os"

	"repro/internal/doclint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir...]")
		os.Exit(2)
	}
	var failed bool
	for _, dir := range os.Args[1:] {
		problems, err := doclint.CheckDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, p := range problems {
			failed = true
			fmt.Println(p)
		}
	}
	if failed {
		os.Exit(1)
	}
}
