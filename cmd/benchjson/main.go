// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON artifact, so the repo's performance trajectory
// (ns/op, allocs/op, req/s, recs/s, ...) can be tracked across commits
// without scraping text tables:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_train.json
//
// Every `value unit` pair after the iteration count is kept, including
// custom b.ReportMetric metrics.
//
// With -merge, an existing artifact is extended instead of read from
// stdin; with -load (repeatable), `overton load` JSON reports are
// stamped in as `Load/<workload>` rows — which is how the CI load smoke
// lands its throughput and tail-latency numbers next to the micro
// benchmarks:
//
//	benchjson -merge BENCH_train.json -load report.json -out BENCH_train.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/traffic"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Artifact is the file layout of BENCH_*.json.
type Artifact struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	CPU         string    `json:"cpu,omitempty"`
	NumCPU      int       `json:"num_cpu"`
	// GOAMD64 records the microarchitecture level the benchmarks were
	// built for (empty when unset, i.e. the v1 baseline), so
	// reduced-precision kernel numbers are comparable across machines.
	GOAMD64    string   `json:"goamd64,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// loadFlags collects repeatable -load paths.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }

func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	merge := flag.String("merge", "", "extend this existing artifact instead of reading stdin")
	var loads loadFlags
	flag.Var(&loads, "load", "overton load report JSON to stamp in as a Load/<workload> row (repeatable)")
	flag.Parse()

	var art Artifact
	if *merge != "" {
		blob, err := os.ReadFile(*merge)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(blob, &art); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *merge, err))
		}
	} else {
		art = Artifact{
			GeneratedAt: time.Now().UTC(),
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			GOAMD64:     os.Getenv("GOAMD64"),
		}
		scanBench(&art)
	}

	for _, path := range loads {
		blob, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var rep traffic.Report
		if err := json.Unmarshal(blob, &rep); err != nil {
			fatal(fmt.Errorf("parse load report %s: %w", path, err))
		}
		if err := rep.Reconciles(); err != nil {
			fatal(fmt.Errorf("load report %s: %w", path, err))
		}
		art.Benchmarks = append(art.Benchmarks, Result{
			Name:       "Load/" + rep.Workload,
			Iterations: rep.Offered,
			Metrics:    rep.BenchMetrics(),
		})
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)
}

// scanBench parses `go test -bench` output from stdin into art.
func scanBench(art *Artifact) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the raw output through so the artifact step stays readable
		// in CI logs.
		fmt.Fprintln(os.Stderr, line)
		if cpu, ok := strings.CutPrefix(strings.TrimSpace(line), "cpu:"); ok {
			art.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		art.Benchmarks = append(art.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
