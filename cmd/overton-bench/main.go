// Command overton-bench regenerates the paper's evaluation tables and
// figures from the reproduction harness:
//
//	overton-bench -exp fig3            # Figure 3 error-reduction table
//	overton-bench -exp fig4a           # Figure 4a scaling series
//	overton-bench -exp fig4b           # Figure 4b pretraining study
//	overton-bench -exp slice           # Section 2.2 slice study
//	overton-bench -exp ablations       # DESIGN.md ablations
//	overton-bench -exp all -full       # everything at the full profile
//
// -full uses the EXPERIMENTS.md profile (minutes); the default quick
// profile runs in tens of seconds. -json additionally dumps raw rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3|fig4a|fig4b|slice|ablations|all")
	full := flag.Bool("full", false, "use the full (EXPERIMENTS.md) profile")
	jsonOut := flag.Bool("json", false, "also print raw rows as JSON")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	opts.Seed = *seed
	if *verbose {
		opts.Log = os.Stderr
	}

	run := func(name string) error {
		switch name {
		case "fig3":
			rows, err := experiments.Figure3(opts)
			if err != nil {
				return err
			}
			experiments.RenderFigure3(os.Stdout, rows)
			return dumpJSON(*jsonOut, rows)
		case "fig4a":
			points, err := experiments.Figure4a(opts)
			if err != nil {
				return err
			}
			experiments.RenderFigure4a(os.Stdout, points)
			return dumpJSON(*jsonOut, points)
		case "fig4b":
			points, err := experiments.Figure4b(opts)
			if err != nil {
				return err
			}
			experiments.RenderFigure4b(os.Stdout, points)
			return dumpJSON(*jsonOut, points)
		case "slice":
			res, err := experiments.SliceExperiment(opts)
			if err != nil {
				return err
			}
			experiments.RenderSlice(os.Stdout, res)
			return dumpJSON(*jsonOut, res)
		case "ablations":
			rows, err := experiments.Ablations(opts)
			if err != nil {
				return err
			}
			experiments.RenderAblations(os.Stdout, rows)
			return dumpJSON(*jsonOut, rows)
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig3", "fig4a", "fig4b", "slice", "ablations"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "overton-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func dumpJSON(enabled bool, v any) error {
	if !enabled {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
