// Package overton is a from-scratch, pure-Go reproduction of Overton
// (Ré et al., CIDR 2020): a data system for building, monitoring, and
// improving production machine-learning applications.
//
// The public API mirrors the paper's engineer workflow (Figure 1):
//
//	app, _ := overton.Open(schemaJSON)          // declare payloads + tasks
//	ds, _ := app.LoadData("supervision.jsonl")  // multi-source supervision
//	m, rep, _ := app.Build(ds, overton.BuildOptions{SearchBudget: 8})
//	report, _ := app.Report(m, ds, overton.ReportOptions{EvalTag: "test"})
//	m.SaveFile("model.bin")                     // deployable artifact
//
// Engineers supply a schema and a data file; Overton combines the weak
// supervision (Snorkel-style label model), compiles the schema into a
// multitask deep model with slice-aware capacity, searches coarse-grained
// architecture/hyperparameter choices, and emits a deployable artifact with
// a serving signature. No model code is ever written by the application
// engineer.
package overton

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/compile"
	"repro/internal/embeddings"
	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/train"
)

func init() {
	// Wire the contextual-encoder codec so models using "bertsim-*"
	// embeddings serialize transparently.
	model.RegisterContextualCodec(embeddings.BERTSimCodec{})
}

// Re-exported core types so callers need only this package.
type (
	// Schema is the declarative payloads+tasks contract.
	Schema = schema.Schema
	// Tuning is the coarse-grained model search space.
	Tuning = schema.Tuning
	// Choice is one searched configuration.
	Choice = schema.Choice
	// Dataset is a loaded data file.
	Dataset = record.Dataset
	// Record is one supervision example.
	Record = record.Record
	// PayloadValue is one payload's value inside a record.
	PayloadValue = record.PayloadValue
	// SetMember is one candidate of a set payload.
	SetMember = record.SetMember
	// Label is one source's annotation for one task.
	Label = record.Label
	// Model is a compiled, trained, deployable model.
	Model = model.Model
	// Output is a per-record prediction across tasks.
	Output = model.Output
	// TaskMetrics is the per-task quality summary.
	TaskMetrics = metrics.TaskMetrics
	// Report is a fine-grained monitoring report.
	Report = monitor.Report
)

// GoldSource is the reserved evaluation-only source name.
const GoldSource = record.GoldSource

// Default tags.
const (
	TagTrain = record.TagTrain
	TagDev   = record.TagDev
	TagTest  = record.TagTest
)

// App couples a schema with tuning and resources; it is the entry point for
// the build/monitor lifecycle.
type App struct {
	Schema *Schema
	Tuning *Tuning
	// Slices lists slice names the compiled model allocates capacity for;
	// nil means slices found in the data are monitored but not given
	// model capacity.
	Slices []string
	// Resources override automatic resource derivation (vocabulary,
	// pretrained embeddings). Normally left nil: Build derives them from
	// the data file.
	Resources *compile.Resources
}

// Open parses and validates a schema.
func Open(schemaJSON []byte) (*App, error) {
	sch, err := schema.Parse(schemaJSON)
	if err != nil {
		return nil, err
	}
	return &App{Schema: sch, Tuning: schema.DefaultTuning()}, nil
}

// OpenFile parses a schema from a file.
func OpenFile(path string) (*App, error) {
	sch, err := schema.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &App{Schema: sch, Tuning: schema.DefaultTuning()}, nil
}

// SetTuning replaces the search space from a tuning-spec JSON.
func (a *App) SetTuning(tuningJSON []byte) error {
	t, err := schema.ParseTuning(tuningJSON)
	if err != nil {
		return err
	}
	a.Tuning = t
	return nil
}

// LoadData reads a JSONL data file under the app's schema.
func (a *App) LoadData(path string) (*Dataset, error) {
	return record.Load(path, a.Schema)
}

// BuildOptions control supervision combination, search, and training.
type BuildOptions struct {
	Seed int64
	// SearchBudget is the number of tuning configurations to try; <= 1
	// trains the default choice only.
	SearchBudget int
	// Halving enables successive-halving search.
	Halving bool
	// Parallel bounds concurrent search trials.
	Parallel int
	// Estimator picks the label-model flavour ("", "majority",
	// "accuracy", "dawid-skene").
	Estimator string
	// Rebalance applies automatic class rebalancing.
	Rebalance bool
	// EarlyStopPatience stops training after this many non-improving
	// epochs (0 trains the full budget).
	EarlyStopPatience int
	// TrainWorkers is the data-parallel shard count per training step
	// (0 = min(NumCPU, batch size), 1 = serial).
	TrainWorkers int
	// Precision selects the serving precision baked into the artifact:
	// "" or "f64" for the exact plane, "f32" for the reduced-precision
	// plane (quantized folded tables, float32 kernels). Training always
	// runs in f64; this only affects inference.
	Precision string
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// BuildReport summarises a Build run.
type BuildReport struct {
	// Choice the final model uses.
	Choice Choice
	// DevScore of the final model (mean primary metric on the dev tag).
	DevScore float64
	// Trials from search (nil when no search ran).
	Trials []search.Trial
	// SourceAccuracy per task: the label model's estimates.
	SourceAccuracy map[string]map[string]float64
	// Program is the compiled program description.
	Program string
}

// Build runs the full pipeline: derive resources, combine supervision,
// search/train, and return the deployable model.
func (a *App) Build(ds *Dataset, opts BuildOptions) (*Model, *BuildReport, error) {
	res, err := a.resources(ds, opts.Seed)
	if err != nil {
		return nil, nil, err
	}
	tcfg := train.Config{
		Seed:              opts.Seed,
		Estimator:         labelmodel.Estimator(opts.Estimator),
		Rebalance:         opts.Rebalance,
		EarlyStopPatience: opts.EarlyStopPatience,
		Workers:           opts.TrainWorkers,
	}
	rep := &BuildReport{}

	var m *Model
	var targets map[string]*labelmodel.TaskTargets
	if opts.SearchBudget > 1 {
		scfg := search.Config{
			Tuning:    a.Tuning,
			Budget:    opts.SearchBudget,
			Halving:   opts.Halving,
			Parallel:  opts.Parallel,
			Seed:      opts.Seed,
			Slices:    a.Slices,
			Resources: res,
			Train:     tcfg,
			Log:       opts.Log,
		}
		sres, best, err := search.Run(ds, scfg)
		if err != nil {
			return nil, nil, err
		}
		m = best
		rep.Trials = sres.Trials
		rep.Choice = sres.Best.Choice
		rep.DevScore = sres.Best.DevScore
	} else {
		choice := a.Tuning.Default()
		prog, err := compile.Plan(a.Schema, choice, a.Slices)
		if err != nil {
			return nil, nil, err
		}
		m, err = model.New(prog, res, opts.Seed)
		if err != nil {
			return nil, nil, err
		}
		trep, err := train.Run(m, ds, tcfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Choice = choice
		rep.DevScore = trep.BestDev
		targets = trep.Supervision
	}
	rep.Program = m.Prog.Describe()

	prec, err := model.ParsePrecision(opts.Precision)
	if err != nil {
		return nil, nil, err
	}
	if err := m.SetPrecision(prec); err != nil {
		return nil, nil, err
	}

	// Label-model diagnostics for the report. The default path reuses the
	// targets the trainer already combined; search runs combine once here.
	if targets == nil {
		if t, err := train.CombineSupervision(ds, tcfg); err == nil {
			targets = t
		}
	}
	if targets != nil {
		rep.SourceAccuracy = map[string]map[string]float64{}
		for task, tt := range targets {
			rep.SourceAccuracy[task] = tt.SourceAccuracy
		}
	}
	return m, rep, nil
}

// resources returns explicit resources or derives them from the dataset:
// vocabulary from the token payload, entity ids from set payloads, static
// embeddings / a BERT-sim encoder pretrained on the data-file text when the
// tuning space asks for them.
func (a *App) resources(ds *Dataset, seed int64) (*compile.Resources, error) {
	if a.Resources != nil {
		return a.Resources, nil
	}
	prog, err := compile.Plan(a.Schema, a.Tuning.Default(), nil)
	if err != nil {
		return nil, err
	}
	res := &compile.Resources{}
	tokSet := map[string]bool{}
	entSet := map[string]bool{}
	var corpus [][]string
	for _, r := range ds.Records {
		if pv, ok := r.Payloads[prog.TokenPayload]; ok && !pv.Null {
			corpus = append(corpus, pv.Tokens)
			for _, t := range pv.Tokens {
				tokSet[t] = true
			}
		}
		for _, sp := range prog.SetPayloads {
			if pv, ok := r.Payloads[sp]; ok && !pv.Null {
				for _, mbr := range pv.Set {
					entSet[mbr.ID] = true
				}
			}
		}
	}
	res.TokenVocab = sortedKeys(tokSet)
	res.EntityVocab = sortedKeys(entSet)

	// Pretrained resources on demand.
	staticDim, bertDim := 0, 0
	for _, e := range a.Tuning.Embeddings {
		family, dim, err := compile.EmbeddingFamily(e)
		if err != nil {
			return nil, err
		}
		switch family {
		case "pretrained":
			if staticDim != 0 && staticDim != dim {
				return nil, fmt.Errorf("overton: tuning mixes pretrained dims %d and %d", staticDim, dim)
			}
			staticDim = dim
		case "bertsim":
			if bertDim != 0 && bertDim != dim {
				return nil, fmt.Errorf("overton: tuning mixes bertsim dims %d and %d", bertDim, dim)
			}
			bertDim = dim
		}
	}
	vocab := embeddings.NewVocab(res.TokenVocab)
	if staticDim > 0 {
		res.StaticVectors = embeddings.PretrainStatic(corpus, vocab, staticDim, 2, seed+100)
	}
	if bertDim > 0 {
		res.Contextual = embeddings.PretrainBERTSim(corpus, vocab, embeddings.BERTSimConfig{
			Dim: bertDim, Hidden: bertDim, Epochs: 2, Seed: seed + 200,
		})
	}
	return res, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReportOptions configure monitoring reports.
type ReportOptions struct {
	Name    string
	EvalTag string
	Tags    []string
}

// Report builds the fine-grained quality report for m over ds.
func (a *App) Report(m *Model, ds *Dataset, opts ReportOptions) (*Report, error) {
	targets, err := train.CombineSupervision(ds, train.Config{})
	if err != nil {
		targets = nil // diagnostics are best-effort
	}
	return monitor.Build(m, ds, monitor.Config{
		Name:    opts.Name,
		EvalTag: opts.EvalTag,
		Tags:    opts.Tags,
		Targets: targets,
	})
}

// Compare diffs two reports, flagging regressions beyond threshold.
func Compare(before, after *Report, threshold float64) *monitor.Comparison {
	return monitor.Compare(before, after, threshold)
}

// LoadModel reads a deployable artifact from a file.
func LoadModel(path string) (*Model, error) { return model.LoadFile(path) }

// Evaluate scores m against gold labels on recs.
func Evaluate(m *Model, recs []*Record) (map[string]TaskMetrics, error) {
	return m.Evaluate(recs)
}

// MeanQuality averages the primary metric across tasks; 1-MeanQuality is
// the product error used in Figure 3.
func MeanQuality(ms map[string]TaskMetrics) float64 { return metrics.MeanPrimary(ms) }
