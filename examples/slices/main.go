// Slices: the paper's first engineer use case (Sections 2.2/2.3) — improve
// an existing feature. The monitoring report exposes a weak slice (complex
// entity disambiguations); the engineer declares it a slice, refines the
// supervision *in that slice* ("the main job of the engineer is to diagnose
// what kind of supervision would improve a slice"), rebuilds with
// slice-based capacity, and gates the deploy on regression detection.
//
//	go run ./examples/slices
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	overton "repro"
	"repro/internal/record"
	"repro/internal/workload"
)

func main() {
	// Traffic with a meaningful share of ambiguous, prior-breaking
	// disambiguations and thin annotator coverage.
	examples := workload.Generate(workload.GenConfig{
		Seed: 21, N: 900, AmbiguousRate: 0.4, PriorBreakRate: 0.3,
	})
	ds := workload.BuildDataset(examples, workload.BuildConfig{
		Seed:    21,
		Sources: workload.DefaultSources(0.05),
	})

	app, err := overton.Open([]byte(workload.SchemaJSON))
	if err != nil {
		log.Fatal(err)
	}
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-24"], "encoders": ["CNN"], "hidden": [32],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [30], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		log.Fatal(err)
	}

	// v1: plain multitask model. The per-tag report shows the disambig
	// slice lagging the overall number — the engineer's cue.
	m1, _, err := app.Build(ds, overton.BuildOptions{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	rep1, err := app.Report(m1, ds, overton.ReportOptions{
		Name: "factoid-v1", EvalTag: overton.TagTest,
		Tags: []string{workload.SliceDisambig, "priorbreak"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== v1 (no slice capacity) ===")
	rep1.Render(os.Stdout)

	// v2: the engineer declares the slices (Overton adds membership heads
	// + slice experts, Chen et al. 2019) and requests a targeted annotation
	// batch for slice members — new labels land in the data file as a new
	// source; no model code changes.
	app.Slices = []string{workload.SliceDisambig, workload.SliceNutrition}
	rng := rand.New(rand.NewSource(29))
	var added int
	for i, r := range ds.Records {
		if !r.HasTag(overton.TagTrain) || !r.InSlice(workload.SliceDisambig) {
			continue
		}
		if rng.Float64() > 0.5 { // annotation budget covers half the slice
			continue
		}
		ex := examples[i]
		arg := ex.GoldArg
		if rng.Float64() > 0.95 && len(ex.Candidates) > 1 { // annotators are ~95% accurate
			arg = (arg + 1) % len(ex.Candidates)
		}
		r.SetLabel(workload.TaskIntentArg, "crowdslice", record.Label{Kind: record.KindSelect, Select: arg})
		added++
	}
	fmt.Printf("\nengineer added %d targeted slice annotations (source %q)\n", added, "crowdslice")
	m2, _, err := app.Build(ds, overton.BuildOptions{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := app.Report(m2, ds, overton.ReportOptions{
		Name: "factoid-v2-sliced", EvalTag: overton.TagTest,
		Tags: []string{workload.SliceDisambig, "priorbreak"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== v2 (sliced) ===")
	rep2.Render(os.Stdout)

	// Version comparison with regression detection — the deploy gate.
	cmp := overton.Compare(rep1, rep2, 0.05)
	fmt.Println("\n=== v1 -> v2 deltas ===")
	for _, d := range cmp.Deltas {
		fmt.Printf("  %-12s %-12s %.3f -> %.3f (%+.3f)\n", d.Tag, d.Task, d.Before, d.After, d.Change)
	}
	if len(cmp.Regressions) == 0 {
		fmt.Println("no regressions beyond threshold — safe to ship v2")
	} else {
		fmt.Printf("REGRESSIONS: %d — hold the deploy\n", len(cmp.Regressions))
	}
}
