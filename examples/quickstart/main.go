// Quickstart: the minimal Overton loop — declare a schema, load a data file
// of multi-source supervision, build a model (no model code!), and ask it a
// question.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	overton "repro"
	"repro/internal/workload"
)

func main() {
	// 1. The schema: payloads (tokens, query, candidate entities) and
	//    tasks (POS, EntityType, Intent, IntentArg). This is the factoid
	//    running example from the paper's Figure 2a.
	app, err := overton.Open([]byte(workload.SchemaJSON))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The data file: JSONL records with conflicting weak supervision
	//    (keyword LFs, gazetteers, simulated annotators). In production
	//    this file is curated by engineers; here the synthetic workload
	//    generator stands in for traffic.
	dir, err := os.MkdirTemp("", "overton-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataPath := filepath.Join(dir, "data.jsonl")
	if err := workload.StandardDataset(600, 1, 0.2).Save(dataPath); err != nil {
		log.Fatal(err)
	}
	ds, err := app.LoadData(dataPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d records; %.0f%% of supervision is weak\n",
		len(ds.Records), 100*workload.WeakFraction(ds))

	// 3. Build: combine supervision with the label model, compile the
	//    schema into a multitask model, train. One call, zero model code.
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-24"], "encoders": ["CNN"], "hidden": [32],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [12], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		log.Fatal(err)
	}
	m, rep, err := app.Build(ds, overton.BuildOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled program:")
	fmt.Print(rep.Program)

	// 4. Evaluate on the curated test split.
	ms, err := overton.Evaluate(m, ds.WithTag(overton.TagTest))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntest quality:")
	for _, task := range []string{"Intent", "POS", "EntityType", "IntentArg"} {
		fmt.Printf("  %s\n", ms[task])
	}

	// 5. Ask a question.
	rec := &overton.Record{
		Payloads: map[string]recordPayload{
			"tokens":   {Tokens: []string{"calories", "in", "turkey"}},
			"query":    {String: "calories in turkey"},
			"entities": {Set: []setMember{{ID: "Turkey_(food)", Start: 2, End: 3}, {ID: "Turkey_(country)", Start: 2, End: 3}}},
		},
	}
	out, err := m.PredictOne(rec)
	if err != nil {
		log.Fatal(err)
	}
	choice := out["IntentArg"]
	fmt.Printf("\nquery: %q\n", rec.Payloads["query"].String)
	fmt.Printf("  intent: %s\n", out["Intent"].Class)
	fmt.Printf("  entity: %s (P=%.2f)\n",
		rec.Payloads["entities"].Set[choice.Select].ID, choice.SelectProbs[choice.Select])
}

// Local aliases keep the literal above readable.
type recordPayload = overton.PayloadValue

type setMember = overton.SetMember
