// Coldstart: the paper's second engineer use case (Section 2.3) — launch a
// new product feature with NO annotator labels at all. Supervision comes
// entirely from labeling functions, gazetteers, priors, and alias-swap data
// augmentation; gold labels exist only on the curated test split.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"
	"os"

	overton "repro"
	"repro/internal/workload"
)

func main() {
	// Zero annotator coverage: the "cold start" regime the paper says many
	// privacy-conscious products launch in ("production systems with no
	// traditional supervised training data").
	examples := workload.Generate(workload.GenConfig{Seed: 11, N: 700})
	aug := workload.AugmentAliasSwap(examples, 0.3, nil, 12)
	fmt.Printf("generated %d organic examples + %d augmented (alias swap)\n", len(examples), len(aug))
	examples = append(examples, aug...)

	sources := workload.DefaultSources(0) // no crowd at all
	sources = append(sources,
		workload.AugmentSource{ForTask: workload.TaskIntent},
		workload.AugmentSource{ForTask: workload.TaskIntentArg},
	)
	ds := workload.BuildDataset(examples, workload.BuildConfig{Seed: 11, Sources: sources})
	fmt.Printf("weak supervision share: %.1f%% (gold is evaluation-only)\n", 100*workload.WeakFraction(ds))

	app, err := overton.Open([]byte(workload.SchemaJSON))
	if err != nil {
		log.Fatal(err)
	}
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-24"], "encoders": ["CNN"], "hidden": [32],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [12], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		log.Fatal(err)
	}
	m, rep, err := app.Build(ds, overton.BuildOptions{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	// The label model's estimated source accuracies are the cold-start
	// engineer's first diagnostic: which LFs can be trusted?
	fmt.Println("\nlabel-model source estimates (Intent):")
	for src, acc := range rep.SourceAccuracy["Intent"] {
		fmt.Printf("  %-10s %.3f\n", src, acc)
	}

	ms, err := overton.Evaluate(m, ds.WithTag(overton.TagTest))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntest quality with zero annotator labels:")
	for _, task := range []string{"Intent", "POS", "EntityType", "IntentArg"} {
		fmt.Printf("  %s\n", ms[task])
	}
	fmt.Printf("  mean quality %.3f\n", overton.MeanQuality(ms))

	// Lineage: augmented records are tagged, so their contribution can be
	// monitored separately (Section 2.3: "tag the lineage of these newly
	// created queries").
	report, err := app.Report(m, ds, overton.ReportOptions{
		Name: "coldstart", EvalTag: overton.TagTest, Tags: []string{"augment", "nutrition", "disambig"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.Render(os.Stdout)
}
