// Factoid: the paper's running example end to end — search over coarse
// architecture choices, fine-grained monitoring report, deployable artifact
// published to a versioned store, and an HTTP server answering the query
// "how tall is the president of the united states"-style traffic.
//
//	go run ./examples/factoid
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	overton "repro"
	"repro/internal/artifact"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "overton-factoid")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Engineer inputs: schema + data file (weak supervision only at 10%
	// annotator coverage).
	app, err := overton.Open([]byte(workload.SchemaJSON))
	if err != nil {
		log.Fatal(err)
	}
	ds := workload.StandardDataset(900, 3, 0.1)
	fmt.Printf("data file: %d records, %.0f%% weak supervision, slices %v\n",
		len(ds.Records), 100*workload.WeakFraction(ds), ds.SliceNames())

	// Model search over a small coarse grid (the paper's "red components").
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-24"], "encoders": ["BOW", "CNN"], "hidden": [32],
	  "query_agg": ["mean", "max"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [10], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		log.Fatal(err)
	}
	m, rep, err := app.Build(ds, overton.BuildOptions{Seed: 5, SearchBudget: 4, Log: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch picked: %s (dev %.4f, %d trials)\n", rep.Choice, rep.DevScore, len(rep.Trials))

	// Fine-grained monitoring: per-tag and per-slice quality plus source
	// diagnostics — the report an Overton engineer lives in.
	report, err := app.Report(m, ds, overton.ReportOptions{Name: "factoid-v1", EvalTag: overton.TagTest})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	report.Render(os.Stdout)

	// Publish the deployable artifact to the versioned store.
	store, err := artifact.Open(filepath.Join(dir, "artifacts"))
	if err != nil {
		log.Fatal(err)
	}
	blob, err := m.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	vi, err := store.Put("factoid", blob, artifact.Metadata{
		"choice": rep.Choice.String(),
		"dev":    fmt.Sprintf("%.4f", rep.DevScore),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublished factoid v%d (%s…)\n", vi.Version, vi.Digest[:12])

	// Serve it and answer a query over HTTP.
	srv := serve.New(m, "factoid", vi.Version)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := `{
	  "payloads": {
	    "tokens": ["what", "is", "the", "capital", "of", "georgia"],
	    "query": "what is the capital of georgia",
	    "entities": {
	      "0": {"id": "Georgia_(country)", "range": [5, 6]},
	      "1": {"id": "Georgia_(US_state)", "range": [5, 6]}
	    }
	  }
	}`
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(query))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var pr struct {
		Outputs overton.Output `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHTTP /predict: intent=%s entity-choice=%d\n",
		pr.Outputs["Intent"].Class, pr.Outputs["IntentArg"].Select)
	stats := srv.Snapshot()
	fmt.Printf("serving stats: %d requests, p50 %.2fms\n", stats.Requests, stats.P50Millis)
}
