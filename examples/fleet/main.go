// Fleet: the deployment-registry serving loop — run two model versions of
// the factoid task behind one HTTP front, mirror live traffic to a shadow
// candidate, read its agreement stats, atomically promote it (and roll it
// back), then overload the deployment against its admission limits and
// watch the excess shed with 429s instead of queueing.
//
//	go run ./examples/fleet
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	overton "repro"
	"repro/internal/deploy"
	"repro/internal/serve"
	"repro/internal/workload"
)

const query = `{"payloads": {"tokens": ["how", "tall", "is", "obama"], "query": "how tall is obama",
  "entities": {"0": {"id": "Barack_Obama", "range": [3, 4]}}}}`

const ingest = `{"payloads": {"tokens": ["how", "old", "is", "obama"], "query": "how old is obama"}, "tasks": {"Intent": {"weak1": "Age"}}, "tags": ["live"]}
`

func main() {
	// 1. Train two model versions of the same schema (in production these
	//    come from the artifact store; the seeds stand in for a retrain).
	app, err := overton.Open([]byte(workload.SchemaJSON))
	if err != nil {
		log.Fatal(err)
	}
	ds := workload.StandardDataset(400, 1, 0.2)
	if err := app.SetTuning([]byte(`{
	  "embeddings": ["hash-16"], "encoders": ["CNN"], "hidden": [24],
	  "query_agg": ["mean"], "entity_agg": ["mean"],
	  "lr": [0.02], "epochs": [4], "dropout": [0], "batch_size": [32]
	}`)); err != nil {
		log.Fatal(err)
	}
	v1, _, err := app.Build(ds, overton.BuildOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	v2, _, err := app.Build(ds, overton.BuildOptions{Seed: 8})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Register v1 as the live deployment and v2 as its shadow: v2 sees
	//    every request v1 serves, and the registry records how often the
	//    two agree, per task — evaluation on live traffic, before promote.
	reg := deploy.NewRegistry()
	d := deploy.New("factoid", v1, 1)
	if err := reg.Add(d); err != nil {
		log.Fatal(err)
	}
	if err := d.SetShadow(v2, 2); err != nil {
		log.Fatal(err)
	}
	front := serve.NewFleet(reg)
	defer front.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, front.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("fleet front on %s\n\n", base)

	// 3. Live traffic: predictions answered by v1, mirrored to v2; a
	//    streaming ingest line lands in the deployment's record buffer.
	for i := 0; i < 20; i++ {
		post(base+"/v1/models/factoid/predict", query)
	}
	post(base+"/v1/models/factoid/ingest", ingest)
	d.FlushShadow() // let the mirrored comparisons land before reading stats

	fmt.Println("per-deployment stats with the shadow attached:")
	fmt.Println(get(base + "/v1/models/factoid/stats"))

	// 4. The agreement rate looks healthy -> promote v2 atomically. The
	//    old primary stays one Rollback away.
	fmt.Println("promote:", post(base+"/v1/models/factoid/promote", ""))
	fmt.Println("predict now served by:", post(base+"/v1/models/factoid/predict", query)[:60], "...")
	fmt.Println("rollback:", post(base+"/v1/models/factoid/rollback", ""))

	// 5. The ingest buffer holds labelled live traffic for fine-tuning.
	recs := d.Drain()
	fmt.Printf("\ndrained %d ingested record(s) for the next fine-tune pass\n", len(recs))

	// 6. Admission control: cap the deployment at 5 QPS (burst 5) over the
	//    runtime limits endpoint, then offer 20 requests at once. The burst
	//    is served; the excess sheds with 429 + Retry-After — never queued —
	//    and the shed counters account for every request.
	fmt.Println("\nset limits:", post(base+"/v1/models/factoid/limits", `{"qps": 5, "burst": 5}`))
	served, shed := 0, 0
	for i := 0; i < 20; i++ {
		resp, err := http.Post(base+"/v1/models/factoid/predict", "application/json",
			bytes.NewReader([]byte(query)))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
		} else {
			served++
		}
		resp.Body.Close()
	}
	fmt.Printf("offered 20 requests against qps=5/burst=5: %d served, %d shed (429)\n", served, shed)
	fmt.Println("admission counters:", get(base+"/v1/models/factoid/limits"))
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(data))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(data))
}
