#!/bin/sh
# scripts/bench.sh — run the core performance benchmarks and write the
# machine-readable trajectory artifact BENCH_train.json (ns/op, allocs/op,
# req/s, recs/s). CI uploads the file; run locally before/after perf work
# to keep PERFORMANCE.md honest.
#
#   ./scripts/bench.sh [benchtime] [out]
#
# benchtime defaults to 3x (one epoch is already a meaningful unit of
# work); out defaults to BENCH_train.json at the repo root.
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-3x}"
out="${2:-BENCH_train.json}"

{
  # Data-parallel training engine: serial vs W in {1,2,4,8} epoch time.
  go test -run '^$' -bench 'BenchmarkTrainEpochParallel' -benchmem \
    -benchtime "$benchtime" ./internal/model/
  # Engineer-loop trajectory benchmark.
  go test -run '^$' -bench 'BenchmarkBuildPipeline' \
    -benchmem -benchtime "$benchtime" .
  # Serving-path benchmarks run both precision planes (f64 and f32
  # sub-benchmarks; the latency one also reports folded table-bytes per
  # plane). Single-predict ops are ~100µs, so pin a real sample count —
  # the global benchtime is sized for whole train epochs.
  go test -run '^$' -bench 'BenchmarkPredictLatency' \
    -benchmem -benchtime 2000x .
  go test -run '^$' -bench 'BenchmarkPredictThroughput' \
    -benchtime "$benchtime" ./internal/serve/
  # Admission control: limiter overhead on the predict path (unlimited vs
  # admitted), the per-shed cost, and neighbour-isolation p99s. These are
  # microsecond-scale ops, so the global benchtime (sized for whole train
  # epochs) would record pure noise; pin a real sample count instead.
  go test -run '^$' -bench 'BenchmarkFleetAdmission' \
    -benchtime 2000x ./internal/deploy/
} | go run ./cmd/benchjson -out "$out"
