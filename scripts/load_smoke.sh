#!/usr/bin/env bash
# load_smoke.sh — seeded synthetic-traffic smoke against a live cluster.
#
# Boots two real `overton serve` replicas behind one `overton route`
# router and fires a short seeded zipf-hotkey storm at it with
# `overton load`. Asserts:
#   - the stream is deterministic at the CLI level: two `-dump` runs
#     with the same flags produce byte-identical output;
#   - exact shed accounting: offered == admitted + shed + errored
#     (`overton load` exits non-zero when the identity breaks), with
#     zero errored requests against a healthy fleet;
#   - the admitted p99 stays under a generous CI bound (-max-p99).
#
# When a bench artifact path is given, the load report is stamped into
# it as a Load/<workload> row via `benchjson -merge -load`.
#
# Usage: scripts/load_smoke.sh [base-port] [bench-artifact.json]
set -euo pipefail

BASE="${1:-18400}"
ARTIFACT="${2:-}"
R1="127.0.0.1:$((BASE + 1))"
R2="127.0.0.1:$((BASE + 2))"
ROUTER="127.0.0.1:${BASE}"
ROOT="$(pwd)"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "load_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() { # wait_ready <addr>
  for _ in $(seq 1 50); do
    curl -sf "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "$1 never became ready"
}

report_field() { # report_field <file> <key>
  sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -1
}

echo "load_smoke: workdir ${WORK}"
go build -o "${WORK}/overton" ./cmd/overton

cd "$WORK"
./overton datagen -n 400 -seed 1 -out data.jsonl -schema-out schema.json >/dev/null
./overton train -schema schema.json -data data.jsonl -out m1.bin -seed 1 >/dev/null 2>&1

# --- Determinism at the CLI: same flags, byte-identical stream. ---------
./overton load -workload zipf-hotkey -seed 42 -qps 200 -dump 500 >dump1.jsonl
./overton load -workload zipf-hotkey -seed 42 -qps 200 -dump 500 >dump2.jsonl
cmp -s dump1.jsonl dump2.jsonl || fail "same seed produced different streams"
./overton load -workload zipf-hotkey -seed 43 -qps 200 -dump 500 >dump3.jsonl
cmp -s dump1.jsonl dump3.jsonl && fail "different seeds produced identical streams"
echo "load_smoke: stream determinism OK (500-request dumps identical)"

# --- Live 2-replica cluster. --------------------------------------------
./overton serve -deploy factoid=m1.bin -addr "$R1" >r1.log 2>&1 &
PIDS+=("$!")
./overton serve -deploy factoid=m1.bin -addr "$R2" >r2.log 2>&1 &
PIDS+=("$!")
wait_ready "$R1"; wait_ready "$R2"
./overton route -addr "$ROUTER" -replica "http://${R1}" -replica "http://${R2}" \
  -probe-interval 150ms >router.log 2>&1 &
PIDS+=("$!")
wait_ready "$ROUTER"

# --- Seeded storm. `overton load` itself enforces the accounting --------
# --- identity and the p99 bound via its exit code. ----------------------
./overton load -target "http://${ROUTER}" -workload zipf-hotkey -seed 42 \
  -qps 200 -requests 600 -workers 8 -max-p99 2000 -out report.json ||
  fail "overton load reported a broken run (accounting or p99)"

OFFERED="$(report_field report.json offered)"
ADMITTED="$(report_field report.json admitted)"
SHED="$(report_field report.json shed)"
ERRORED="$(report_field report.json errored)"
[ "$OFFERED" = "600" ] || fail "offered ${OFFERED} != 600"
[ "$ERRORED" = "0" ] || fail "errored ${ERRORED} != 0 against a healthy fleet"
[ "$((ADMITTED + SHED + ERRORED))" = "$OFFERED" ] ||
  fail "accounting broken: ${OFFERED} != ${ADMITTED} + ${SHED} + ${ERRORED}"
echo "load_smoke: storm OK (offered ${OFFERED} = admitted ${ADMITTED} + shed ${SHED} + errored ${ERRORED})"

# --- Stamp the report into the bench artifact. --------------------------
if [ -n "$ARTIFACT" ]; then
  cd "$ROOT"
  [ -f "$ARTIFACT" ] || fail "bench artifact ${ARTIFACT} not found"
  go run ./cmd/benchjson -merge "$ARTIFACT" -load "${WORK}/report.json" -out "$ARTIFACT"
  echo "load_smoke: stamped Load/zipf-hotkey into ${ARTIFACT}"
fi

echo "load_smoke: PASS"
