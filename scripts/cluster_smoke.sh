#!/usr/bin/env bash
# cluster_smoke.sh — process-level failover smoke for the cluster tier.
#
# Boots three real `overton serve` replicas and one `overton route`
# router, storms predict traffic through the router, then SIGKILLs one
# replica mid-rolling-promote. Asserts:
#   - the promote completes on the survivors (the dead replica is
#     skipped, not fatal);
#   - client success rate over the storm stays >= 99% (one replica loss
#     costs at most its in-flight requests);
#   - the killed replica, restarted at the same address with the OLD
#     model, is probed back in and resynced to the fleet target version
#     (convergence visible in /v1/cluster/stats).
#
# Usage: scripts/cluster_smoke.sh [base-port]   (default 18200)
set -euo pipefail

BASE="${1:-18200}"
R1="127.0.0.1:$((BASE + 1))"
R2="127.0.0.1:$((BASE + 2))"
R3="127.0.0.1:$((BASE + 3))"
ROUTER="127.0.0.1:${BASE}"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() { # wait_ready <addr>
  for _ in $(seq 1 50); do
    curl -sf "http://$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "$1 never became ready"
}

replica_version() { # replica_version <addr>
  curl -s "http://$1/v1/models/factoid/stats" |
    sed -n 's/.*"version":\([0-9]*\).*/\1/p'
}

echo "cluster_smoke: workdir ${WORK}"
go build -o "${WORK}/overton" ./cmd/overton

cd "$WORK"
./overton datagen -n 400 -seed 1 -out data.jsonl -schema-out schema.json >/dev/null
./overton train -schema schema.json -data data.jsonl -out m1.bin -seed 1 >/dev/null 2>&1
./overton train -schema schema.json -data data.jsonl -out m2.bin -seed 7 >/dev/null 2>&1

start_replica() { # start_replica <addr> <log> [extra flags...]  (model m1, v1)
  local addr="$1" log="$2"
  shift 2
  ./overton serve -deploy factoid=m1.bin "$@" -addr "$addr" >"$log" 2>&1 &
  echo $!
}

# Every replica stages m2 as its shadow, so the router's empty-body
# promote can pull the candidate from the fleet itself.
P1="$(start_replica "$R1" r1.log -shadow factoid=m2.bin)"; PIDS+=("$P1")
P2="$(start_replica "$R2" r2.log -shadow factoid=m2.bin)"; PIDS+=("$P2")
P3="$(start_replica "$R3" r3.log -shadow factoid=m2.bin)"; PIDS+=("$P3")
wait_ready "$R1"; wait_ready "$R2"; wait_ready "$R3"

# A long promote hold gives the storm and the kill a window inside the
# rolling promote.
./overton route -addr "$ROUTER" \
  -replica "http://${R1}" -replica "http://${R2}" -replica "http://${R3}" \
  -probe-interval 150ms -promote-hold 700ms -retry-base 10ms \
  >router.log 2>&1 &
RT_PID=$!
PIDS+=("$RT_PID")
wait_ready "$ROUTER"

# --- Traffic storm through the router. ----------------------------------
PAYLOAD='{"payloads":{"tokens":["how","tall","is","obama"],"query":"how tall is obama","entities":{"0":{"id":"Barack_Obama","range":[3,4]}}}}'
storm() { # storm <outfile>: sequential requests until stopfile appears
  local ok=0 total=0
  while [ ! -f stop_storm ]; do
    code="$(curl -s -o /dev/null -w '%{http_code}' --max-time 5 \
      -X POST --data-binary "$PAYLOAD" \
      "http://${ROUTER}/v1/models/factoid/predict" || echo 000)"
    total=$((total + 1))
    [ "$code" = "200" ] && ok=$((ok + 1))
  done
  echo "$ok $total" >"$1"
}
storm storm1.txt & W1=$!
storm storm2.txt & W2=$!
storm storm3.txt & W3=$!
PIDS+=("$W1" "$W2" "$W3")

# --- Rolling promote; SIGKILL replica 2 inside the rollout. -------------
(sleep 0.9; kill -9 "$P2" 2>/dev/null || true) &
KILLER=$!
PIDS+=("$KILLER")
curl -s --max-time 60 -X POST "http://${ROUTER}/v1/models/factoid/promote" \
  -o promote.json || fail "rolling promote request failed"
wait "$KILLER" 2>/dev/null || true
grep -q '"version":2' promote.json || fail "promote response missing version 2: $(cat promote.json)"

sleep 1 # let the storm sample the post-promote, one-replica-down fleet
touch stop_storm
wait "$W1" "$W2" "$W3" 2>/dev/null || true

OK=0; TOTAL=0
for f in storm1.txt storm2.txt storm3.txt; do
  read -r o t <"$f"
  OK=$((OK + o)); TOTAL=$((TOTAL + t))
done
[ "$TOTAL" -gt 0 ] || fail "storm made no requests"
PCT=$((OK * 100 / TOTAL))
echo "cluster_smoke: storm ${OK}/${TOTAL} ok (${PCT}%)"
[ "$PCT" -ge 99 ] || fail "success rate ${PCT}% < 99% across a single replica kill"

# Survivors converged on v2 even though replica 2 died mid-rollout.
[ "$(replica_version "$R1")" = "2" ] || fail "replica 1 not at v2"
[ "$(replica_version "$R3")" = "2" ] || fail "replica 3 not at v2"

# --- Restart the killed replica with the OLD model: the router must ----
# --- probe it back in and resync it to the fleet target. ----------------
P2="$(start_replica "$R2" r2b.log)"; PIDS+=("$P2")
wait_ready "$R2"

for _ in $(seq 1 100); do
  [ "$(replica_version "$R2")" = "2" ] && break
  sleep 0.2
done
[ "$(replica_version "$R2")" = "2" ] || fail "restarted replica never resynced to v2"

# Fleet view agrees: converged at target 2, all three replicas healthy.
STATS="$(curl -s "http://${ROUTER}/v1/cluster/stats")"
echo "$STATS" | grep -q '"target_version":2' || fail "fleet view missing target 2: $STATS"
echo "$STATS" | grep -q '"converged":true' || fail "fleet view not converged: $STATS"
# grep exits 1 when nothing is unhealthy — the PASS case — so shield
# the pipeline from pipefail.
UNHEALTHY="$(echo "$STATS" | grep -o '"healthy":false' | wc -l || true)"
[ "$UNHEALTHY" = "0" ] || fail "fleet view still reports unhealthy replicas: $STATS"

echo "cluster_smoke: PASS (kill -9 mid-promote: ${PCT}% success, fleet converged at v2)"
