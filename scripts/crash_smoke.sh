#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery smoke for `overton serve`.
#
# Boots a stateful fleet, mutates it over HTTP (ingest + shadow promote),
# kills the process with SIGKILL mid-flight, restarts from the state dir
# alone, and asserts the fleet came back at the exact pre-crash state:
# promoted version, replayed ingest WAL, serving traffic. Then exercises
# the graceful path: SIGTERM must drain, checkpoint the journal, and a
# third boot must recover clean (no unclean-shutdown warning) with the
# WAL still intact.
#
# Usage: scripts/crash_smoke.sh [port]   (default 18117)
set -euo pipefail

PORT="${1:-18117}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "crash_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() { # wait_ready -> dies after ~10s if /readyz never answers 200
  for _ in $(seq 1 50); do
    curl -sf "http://${ADDR}/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "server never became ready on ${ADDR}"
}

stat_field() { # stat_field <json-key> -> integer value from /stats
  curl -s "http://${ADDR}/v1/models/factoid/stats" |
    sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

echo "crash_smoke: workdir ${WORK}"
go build -o "${WORK}/overton" ./cmd/overton

cd "$WORK"
./overton datagen -n 400 -seed 1 -out data.jsonl -schema-out schema.json >/dev/null
./overton train -schema schema.json -data data.jsonl -out m1.bin -seed 1 >/dev/null 2>&1
./overton train -schema schema.json -data data.jsonl -out m2.bin -seed 7 >/dev/null 2>&1

# --- Boot 1: stateful fleet, mutate, then die hard. ---------------------
./overton serve -deploy factoid=m1.bin -shadow factoid=m2.bin \
  -state-dir state -addr "$ADDR" >serve1.log 2>&1 &
SRV_PID=$!
wait_ready

head -3 data.jsonl |
  curl -sf -X POST --data-binary @- "http://${ADDR}/v1/models/factoid/ingest" >/dev/null ||
  fail "ingest rejected"
curl -sf -X POST "http://${ADDR}/v1/models/factoid/promote" >/dev/null ||
  fail "promote rejected"
[ "$(stat_field version)" = "2" ] || fail "promote did not reach v2"
[ "$(stat_field buffered)" = "3" ] || fail "ingest not buffered"

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
[ -s state/journal.log ] || fail "no journal written before crash"

# --- Boot 2: recover from the state dir alone. --------------------------
./overton serve -state-dir state -addr "$ADDR" >serve2.log 2>&1 &
SRV_PID=$!
wait_ready

[ "$(stat_field version)" = "2" ] || fail "recovered version != 2 (promote lost)"
[ "$(stat_field buffered)" = "3" ] || fail "ingest WAL not replayed"
grep -q 'did not shut down cleanly' serve2.log ||
  fail "SIGKILL restart not reported as unclean"
# The recovered model must actually serve.
payload='{"payloads":{"tokens":["how","tall","is","obama"],"query":"how tall is obama","entities":{"0":{"id":"Barack_Obama","range":[3,4]}}}}'
echo "$payload" |
  curl -sf -X POST --data-binary @- "http://${ADDR}/predict" >/dev/null ||
  fail "recovered deployment cannot serve predictions"

# --- Graceful drain: SIGTERM -> checkpoint -> clean restart. ------------
kill -TERM "$SRV_PID"
for _ in $(seq 1 100); do kill -0 "$SRV_PID" 2>/dev/null || break; sleep 0.2; done
kill -0 "$SRV_PID" 2>/dev/null && fail "server did not exit after SIGTERM"
SRV_PID=""
grep -q 'shutdown: complete' serve2.log || fail "graceful drain did not complete"
grep -q '"type":"checkpoint"' state/journal.log ||
  fail "clean shutdown did not checkpoint the journal"

./overton serve -state-dir state -addr "$ADDR" >serve3.log 2>&1 &
SRV_PID=$!
wait_ready
grep -q 'did not shut down cleanly' serve3.log &&
  fail "checkpointed restart still reported unclean"
[ "$(stat_field buffered)" = "3" ] || fail "WAL lost across graceful restart"

kill -TERM "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "crash_smoke: PASS (kill -9 recovery + graceful drain + clean restart)"
